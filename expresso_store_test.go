package expresso

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/expresso-verify/expresso/internal/netgen"
	"github.com/expresso-verify/expresso/internal/store"
	"github.com/expresso-verify/expresso/internal/testnet"
)

// storeProps selects one property per analysis stage, so a verification
// exercises every persisted artifact: SRC, routing analysis, SPF, and
// forwarding analysis.
var storeProps = []Kind{RouteLeakFree, RouteHijackFree, TrafficHijackFree}

// persistedStages are the pipeline stages the disk tier serves.
var persistedStages = []string{"src", "routing_analysis", "spf", "forwarding_analysis"}

// scratchReport runs a store-less, cache-less verification and returns
// the normalized report — the ground truth every disk-warm run must match
// byte for byte.
func scratchReport(t *testing.T, cfg string, opts Options) string {
	t.Helper()
	rep, _, err := NewVerifier(VerifierConfig{}).VerifyText(context.Background(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return normalizedJSON(t, rep)
}

// countBlobs reports the number of committed artifact blobs under dir.
func countBlobs(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".blob") {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// mutateBlobs rewrites every committed blob under dir through mutate and
// returns how many it touched.
func mutateBlobs(t *testing.T, dir string, mutate func([]byte) []byte) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".blob") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		n++
		return os.WriteFile(path, mutate(data), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestStoreDiskWarmByteIdentical is the acceptance check of the artifact
// store: a cold process pointed at a populated store directory serves
// every pipeline stage from disk, and the deserialized artifacts produce
// a report byte-identical (normalized for run-dependent fields) to a
// from-scratch run — across worker counts and under forced reclamation
// sweeps.
func TestStoreDiskWarmByteIdentical(t *testing.T) {
	fixtures := []struct{ name, cfg string }{
		{"testnet", testnet.Figure4},
		{"region1", netgen.CSP(netgen.CSPOldRegion(1).WithPeers(3))},
	}
	for _, fx := range fixtures {
		for _, workers := range []int{1, 4} {
			for _, reclaim := range []bool{false, true} {
				fx, workers, reclaim := fx, workers, reclaim
				t.Run(fmt.Sprintf("%s-workers%d-reclaim%v", fx.name, workers, reclaim), func(t *testing.T) {
					if reclaim {
						t.Setenv("EXPRESSO_RECLAIM", "200")
					}
					ctx := context.Background()
					opts := Options{Workers: workers, Properties: storeProps}
					want := scratchReport(t, fx.cfg, opts)

					dir := t.TempDir()
					cold := NewVerifier(VerifierConfig{StoreDir: dir})
					if cold.Store() == nil {
						t.Fatal("store not attached")
					}
					if _, _, err := cold.VerifyText(ctx, fx.cfg, opts); err != nil {
						t.Fatal(err)
					}
					if n := countBlobs(t, dir); n < len(persistedStages) {
						t.Fatalf("cold run wrote %d blobs, want >= %d", n, len(persistedStages))
					}

					// A fresh Verifier simulates a restarted process: its
					// stage caches are empty, so everything it serves warm
					// comes off disk.
					warm := NewVerifier(VerifierConfig{StoreDir: dir})
					rep, info, err := warm.VerifyText(ctx, fx.cfg, opts)
					if err != nil {
						t.Fatal(err)
					}
					for _, stage := range persistedStages {
						if s := stageStatus(info, stage); s != StageDisk {
							t.Errorf("stage %s status = %q, want %q (stages: %+v)", stage, s, StageDisk, info.Stages)
						}
					}
					if got := normalizedJSON(t, rep); got != want {
						t.Errorf("disk-warm report differs from scratch:\n--- scratch ---\n%s\n--- disk ---\n%s", want, got)
					}
				})
			}
		}
	}
}

// TestStoreSecondVerifierSkipsRecompute pins the replica scenario: the
// second Verifier sharing a store directory reads everything and writes
// nothing back (disk-served artifacts are not re-persisted).
func TestStoreSecondVerifierSkipsRecompute(t *testing.T) {
	ctx := context.Background()
	cfg := netgen.CSP(netgen.CSPOldRegion(1).WithPeers(3))
	opts := Options{Workers: 1, Properties: storeProps}
	dir := t.TempDir()

	v1 := NewVerifier(VerifierConfig{StoreDir: dir})
	rep1, _, err := v1.VerifyText(ctx, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	st1, ok := v1.StoreTraffic()
	if !ok || st1.Writes < int64(len(persistedStages)) {
		t.Fatalf("first replica store traffic = %+v, want >= %d writes", st1, len(persistedStages))
	}

	v2 := NewVerifier(VerifierConfig{StoreDir: dir})
	rep2, info2, err := v2.VerifyText(ctx, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range persistedStages {
		if s := stageStatus(info2, stage); s != StageDisk {
			t.Errorf("second replica stage %s status = %q, want %q", stage, s, StageDisk)
		}
	}
	st2, _ := v2.StoreTraffic()
	if st2.Hits < int64(len(persistedStages)) {
		t.Errorf("second replica store hits = %d, want >= %d", st2.Hits, len(persistedStages))
	}
	if st2.Writes != 0 {
		t.Errorf("second replica wrote %d blobs back, want 0", st2.Writes)
	}
	if got, want := normalizedJSON(t, rep2), normalizedJSON(t, rep1); got != want {
		t.Errorf("replica reports differ:\n--- first ---\n%s\n--- second ---\n%s", want, got)
	}
}

// TestStoreCorruptBlobsRecomputeSilently flips a payload bit in every
// stored blob: the CRC-guarded reads must treat all of them as misses,
// recompute from scratch without surfacing an error, and still produce
// the correct report.
func TestStoreCorruptBlobsRecomputeSilently(t *testing.T) {
	ctx := context.Background()
	cfg := testnet.Figure4
	opts := Options{Workers: 1, Properties: storeProps}
	want := scratchReport(t, cfg, opts)
	dir := t.TempDir()

	if _, _, err := NewVerifier(VerifierConfig{StoreDir: dir}).VerifyText(ctx, cfg, opts); err != nil {
		t.Fatal(err)
	}
	if n := mutateBlobs(t, dir, func(b []byte) []byte {
		b[len(b)-1] ^= 0x40
		return b
	}); n == 0 {
		t.Fatal("no blobs to corrupt")
	}

	v := NewVerifier(VerifierConfig{StoreDir: dir})
	rep, info, err := v.VerifyText(ctx, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range persistedStages {
		if s := stageStatus(info, stage); s != StageMiss {
			t.Errorf("stage %s over corrupt store = %q, want %q", stage, s, StageMiss)
		}
	}
	if got := normalizedJSON(t, rep); got != want {
		t.Errorf("report over corrupt store differs from scratch:\n--- scratch ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestStoreVersionMismatchRecomputes rewrites every blob with a bumped
// codec version (valid frame, unknown payload format) — the decoder must
// reject it and the pipeline recompute, again without an error.
func TestStoreVersionMismatchRecomputes(t *testing.T) {
	ctx := context.Background()
	cfg := testnet.Figure4
	opts := Options{Workers: 1, Properties: storeProps}
	want := scratchReport(t, cfg, opts)
	dir := t.TempDir()

	if _, _, err := NewVerifier(VerifierConfig{StoreDir: dir}).VerifyText(ctx, cfg, opts); err != nil {
		t.Fatal(err)
	}
	mutateBlobs(t, dir, func(b []byte) []byte {
		payload, ok := store.Unframe(b)
		if !ok {
			t.Fatal("stored blob does not unframe")
		}
		// Payload layout is 4-byte magic then a uvarint codec version;
		// 0x7f is a future version in one byte.
		payload = append([]byte(nil), payload...)
		payload[4] = 0x7f
		return store.Frame(payload)
	})

	rep, info, err := NewVerifier(VerifierConfig{StoreDir: dir}).VerifyText(ctx, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range persistedStages {
		if s := stageStatus(info, stage); s != StageMiss {
			t.Errorf("stage %s over version-mismatched store = %q, want %q", stage, s, StageMiss)
		}
	}
	if got := normalizedJSON(t, rep); got != want {
		t.Errorf("report over version-mismatched store differs from scratch")
	}
}

// TestStoreMemoryEvictionKeepsDiskBlob pins the eviction interaction: when
// a verification's artifacts are evicted from the in-memory stage caches,
// the disk blobs survive, and a re-fetch deserializes them into a report
// byte-identical to the original run.
func TestStoreMemoryEvictionKeepsDiskBlob(t *testing.T) {
	fixtures := []struct{ name, cfgA, cfgB string }{
		{"testnet", testnet.Figure4, netgen.CSP(netgen.CSPOldRegion(1).WithPeers(3))},
		{"region1", netgen.CSP(netgen.CSPOldRegion(1).WithPeers(3)), testnet.Figure4},
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			ctx := context.Background()
			opts := Options{Workers: 1, Properties: storeProps}
			dir := t.TempDir()
			// Single-entry caches so B's artifacts evict A's; the report
			// cache is disabled so the re-fetch must go through the stages.
			v := NewVerifier(VerifierConfig{
				SRCCache: 1, SPFCache: 1, RoutingCache: 1, ForwardingCache: 1,
				ReportCache: -1, StoreDir: dir,
			})
			repA, _, err := v.VerifyText(ctx, fx.cfgA, opts)
			if err != nil {
				t.Fatal(err)
			}
			blobsAfterA := countBlobs(t, dir)
			if _, _, err := v.VerifyText(ctx, fx.cfgB, opts); err != nil {
				t.Fatal(err)
			}
			if n := countBlobs(t, dir); n < blobsAfterA {
				t.Errorf("memory eviction deleted disk blobs: %d -> %d", blobsAfterA, n)
			}
			rep, info, err := v.VerifyText(ctx, fx.cfgA, opts)
			if err != nil {
				t.Fatal(err)
			}
			if s := stageStatus(info, "src"); s != StageDisk {
				t.Errorf("re-fetched SRC status = %q, want %q (stages: %+v)", s, StageDisk, info.Stages)
			}
			if got, want := normalizedJSON(t, rep), normalizedJSON(t, repA); got != want {
				t.Errorf("re-fetched report differs from original:\n--- original ---\n%s\n--- refetch ---\n%s", want, got)
			}
		})
	}
}

// TestStoreUnopenableDirDisablesSilently: persistence is best-effort —
// a StoreDir that cannot be created leaves the Verifier fully functional
// with no attached tier.
func TestStoreUnopenableDirDisablesSilently(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(VerifierConfig{StoreDir: blocker})
	if v.Store() != nil {
		t.Error("store attached over a plain file")
	}
	if _, ok := v.StoreTraffic(); ok {
		t.Error("StoreTraffic reported a tier that is not attached")
	}
	rep, _, err := v.VerifyText(context.Background(), testnet.Figure4, Options{Workers: 1})
	if err != nil || rep == nil {
		t.Fatalf("verification without a store failed: %v", err)
	}
}
