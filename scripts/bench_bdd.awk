# Turns `go test -bench` output for the PR-5 BDD overhaul into
# BENCH_pr5.json (see `make bench-bdd`): the region-1 end-to-end run after
# the overhaul, against the recorded PR-4 baseline of the same benchmark
# (complement edges, apply kernels, and bounded op caches landed between
# the two), plus the BDD microbenchmarks.
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ && NF >= 7 {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
	ns[name] = $3
	bytes[name] = $5
	allocs[name] = $7
	order[n++] = name
}
END {
	# BenchmarkVerifyRegion1 as recorded in BENCH_pr4.json, before the
	# overhaul.
	base_ns = 632202302
	base_bytes = 223653121
	base_allocs = 102854
	r1 = "BenchmarkVerifyRegion1"
	printf "{\n"
	printf "  \"pr\": 5,\n"
	printf "  \"benchmark\": \"BDD hot-path overhaul: region-1 end-to-end before/after, plus kernel/reclaim microbenchmarks\",\n"
	printf "  \"command\": \"make bench-bdd\",\n"
	printf "  \"environment\": { \"cpu\": \"%s\" },\n", cpu
	printf "  \"region1_before\": { \"name\": \"%s\", \"source\": \"BENCH_pr4.json\", \"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d },\n", \
		r1, base_ns, base_bytes, base_allocs
	if (r1 in ns) {
		printf "  \"region1_after\": { \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s },\n", \
			r1, ns[r1], bytes[r1], allocs[r1]
		printf "  \"region1_bytes_reduction_percent\": %.1f,\n", 100 * (base_bytes - bytes[r1]) / base_bytes
		printf "  \"region1_ns_reduction_percent\": %.1f,\n", 100 * (base_ns - ns[r1]) / base_ns
	}
	printf "  \"results\": [\n"
	first = 1
	for (i = 0; i < n; i++) {
		name = order[i]
		if (name == r1) continue
		printf "%s    { \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s }", \
			(first ? "" : ",\n"), name, ns[name], bytes[name], allocs[name]
		first = 0
	}
	printf "\n  ]\n}\n"
}
