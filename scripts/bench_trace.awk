# Turns `go test -bench` output for the untraced/traced region-1 pair into
# BENCH_pr4.json (see `make bench-trace`).
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ && NF >= 7 {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
	ns[name] = $3
	bytes[name] = $5
	allocs[name] = $7
	order[n++] = name
}
END {
	base = "BenchmarkVerifyRegion1"
	traced = "BenchmarkVerifyRegion1Traced"
	printf "{\n"
	printf "  \"pr\": 4,\n"
	printf "  \"benchmark\": \"tracing on vs off, end-to-end verification (CSP region1, leak-only)\",\n"
	printf "  \"command\": \"make bench-trace\",\n"
	printf "  \"environment\": { \"cpu\": \"%s\" },\n", cpu
	printf "  \"results\": [\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    { \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s }%s\n", \
			name, ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "")
	}
	printf "  ]"
	if ((base in ns) && (traced in ns) && ns[base] > 0) {
		printf ",\n  \"trace_overhead_percent\": %.2f\n", 100 * (ns[traced] - ns[base]) / ns[base]
	} else {
		printf "\n"
	}
	printf "}\n"
}
