# Turns `go test -bench` output for the cold/warm region-1 pair into
# BENCH_pr3.json (see `make bench-incremental`).
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ && NF >= 7 {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
	ns[name] = $3
	bytes[name] = $5
	allocs[name] = $7
	order[n++] = name
}
END {
	cold = "BenchmarkVerifyRegion1"
	warm = "BenchmarkVerifyRegion1WarmDelta"
	printf "{\n"
	printf "  \"pr\": 3,\n"
	printf "  \"benchmark\": \"cold vs warm-started incremental verification (CSP region1, leak-only)\",\n"
	printf "  \"command\": \"make bench-incremental\",\n"
	printf "  \"environment\": { \"cpu\": \"%s\" },\n", cpu
	printf "  \"results\": [\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    { \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s }%s\n", \
			name, ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "")
	}
	printf "  ]"
	if ((cold in ns) && (warm in ns) && ns[warm] > 0) {
		printf ",\n  \"cold_over_warm_speedup\": %.2f\n", ns[cold] / ns[warm]
	} else {
		printf "\n"
	}
	printf "}\n"
}
