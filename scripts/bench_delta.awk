# Turns `go test -bench` output for the cold / baseline-delta /
# coalesced-burst region-1 trio into BENCH_pr8.json (see `make
# bench-delta`).
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ && NF >= 7 {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
	ns[name] = $3
	bytes[name] = $5
	allocs[name] = $7
	order[n++] = name
}
END {
	cold = "BenchmarkVerifyRegion1"
	delta = "BenchmarkDeltaRegion1Baseline"
	burst = "BenchmarkDeltaRegion1CoalescedBurst"
	printf "{\n"
	printf "  \"pr\": 8,\n"
	printf "  \"benchmark\": \"cold vs baseline-anchored delta vs coalesced 8-delta burst (CSP region1, leak-only)\",\n"
	printf "  \"command\": \"make bench-delta\",\n"
	printf "  \"environment\": { \"cpu\": \"%s\" },\n", cpu
	printf "  \"results\": [\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    { \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s }%s\n", \
			name, ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "")
	}
	printf "  ]"
	if ((cold in ns) && (delta in ns) && ns[delta] > 0) {
		printf ",\n  \"cold_over_delta_speedup\": %.2f", ns[cold] / ns[delta]
	}
	if ((delta in ns) && (burst in ns) && ns[burst] > 0) {
		# The burst submits 8 superseding deltas per op; without
		# coalescing it would cost ~8 delta runs.
		printf ",\n  \"burst_over_delta_ratio\": %.2f", ns[burst] / ns[delta]
	}
	printf "\n}\n"
}
