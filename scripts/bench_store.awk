# Turns `go test -bench` output for the PR-6 artifact-store benchmarks —
# the region-1 worker sweep plus the store cold/disk-warm/mem-warm trio —
# into BENCH_pr6.json (see `make bench-workers` and `make bench-store`).
# Pass the machine's core count with -v cores=$(nproc) so the recorded
# numbers say whether the worker sweep had real parallelism behind it.
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ && NF >= 7 {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
	ns[name] = $3
	bytes[name] = $5
	allocs[name] = $7
	order[n++] = name
}
END {
	cold = "BenchmarkStoreRegion1Cold"
	disk = "BenchmarkStoreRegion1DiskWarm"
	mem = "BenchmarkStoreRegion1MemWarm"
	printf "{\n"
	printf "  \"pr\": 6,\n"
	printf "  \"benchmark\": \"persistent artifact store on CSP region1 (leak+hijack+traffic): scratch vs disk-warm vs mem-warm, plus the engine worker sweep\",\n"
	printf "  \"command\": \"make bench-workers\",\n"
	printf "  \"environment\": { \"cpu\": \"%s\", \"cores\": %s,\n", cpu, (cores ? cores : 0)
	printf "    \"note\": \"worker speedups need real cores; on a 1-core box the workers=2/4 rows price coordination overhead, not parallelism\" },\n"
	printf "  \"results\": [\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    { \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s }%s\n", \
			name, ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "")
	}
	printf "  ]"
	if ((cold in ns) && (disk in ns) && ns[disk] > 0) {
		printf ",\n  \"cold_over_disk_warm_speedup\": %.2f", ns[cold] / ns[disk]
	}
	if ((disk in ns) && (mem in ns) && ns[mem] > 0) {
		printf ",\n  \"disk_warm_over_mem_warm_slowdown\": %.2f", ns[disk] / ns[mem]
	}
	printf "\n}\n"
}
