// Internet2: check the BlockToExternal property of §7.3 on the synthesized
// Internet2-like dataset — routes carrying the BTE community (11537:888)
// must never be exported to an external neighbor.
//
// Four export sessions in the dataset are missing the BTE filter; the check
// finds each of them (Table 4's Expresso row finds 4 violations).
//
// The full dataset has 300 peers and 32k prefixes; pass -small to run a
// reduced instance quickly.
//
// Run with:
//
//	go run ./examples/internet2 -small
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/expresso-verify/expresso"
	"github.com/expresso-verify/expresso/internal/netgen"
)

func main() {
	small := flag.Bool("small", false, "run a reduced instance (30 peers, 1k prefixes)")
	flag.Parse()

	spec := netgen.Internet2()
	if *small {
		spec.Peers = 30
		spec.Prefixes = 1000
		spec.CustomerPrefixLines = 3000
	}
	net, err := expresso.Load(netgen.GenerateI2(spec))
	if err != nil {
		log.Fatal(err)
	}
	s := net.Topo.Statistics()
	fmt.Printf("Internet2-like network: %d routers, %d peers, %d prefixes, %d config lines\n\n",
		s.Nodes, s.Peers, s.Prefixes, s.ConfigLines)

	report, err := net.Verify(expresso.Options{
		Properties: []expresso.Kind{expresso.BlockToExternal},
		BTE:        netgen.BTECommunity,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BlockToExternal(%s) checked in %v (SRC %v, analysis %v)\n",
		netgen.BTECommunity, report.Timing.Total().Round(1e6),
		report.Timing.SRC.Round(1e6), report.Timing.RoutingAnalysis.Round(1e6))
	fmt.Printf("violations: %d\n", len(report.Violations))
	for _, v := range report.Violations {
		fmt.Printf("  %s\n", v)
	}
}
