// Routeleak: reproduce §2.1 Case 2 of the paper — the CDN incident that
// disconnected millions of users (Figure 2), checked from the CDN's point
// of view before it happens.
//
// The CDN (AS 400) peers with ISP1 and receives de-aggregated /24 routes
// from ISP2 at two PoPs. Best practice tags peer routes with a no-export
// community; router B's import policy forgot the tag, so ISP2's routes leak
// through the CDN to ISP1 — exactly the misconfiguration that caused the
// real outage.
//
// Run with:
//
//	go run ./examples/routeleak
package main

import (
	"fmt"
	"log"

	"github.com/expresso-verify/expresso"
	"github.com/expresso-verify/expresso/internal/epvp"
	"github.com/expresso-verify/expresso/internal/properties"
	"github.com/expresso-verify/expresso/internal/testnet"
	"github.com/expresso-verify/expresso/internal/witness"
)

func main() {
	net, err := expresso.Load(testnet.Case2RouteLeak)
	if err != nil {
		log.Fatal(err)
	}

	report, err := net.Verify(expresso.Options{
		Properties: []expresso.Kind{expresso.RouteLeakFree},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("RouteLeakFree check of the CDN configuration:")
	if len(report.Violations) == 0 {
		fmt.Println("  no leaks — the no-export tagging is consistent")
		return
	}
	for _, v := range report.Violations {
		fmt.Printf("  %s\n", v)
		fmt.Printf("    leaked routes originate at: %v\n", v.Originators)
		fmt.Printf("    example leaked prefix: %s\n", v.Prefix)
	}
	fmt.Println()
	fmt.Println("ISP2's de-aggregated /24s received at router B would transit the")
	fmt.Println("CDN to ISP1 — the exact failure mode of the 2017 incident, found")
	fmt.Println("before any route is ever advertised.")

	// Close the loop: concretize each symbolic finding into one explicit
	// advertisement scenario and replay it through the concrete
	// message-by-message engine to confirm it end to end.
	fmt.Println("\nconcrete confirmation (witness replay):")
	eng := epvp.New(net.Topo, epvp.FullMode())
	cp := eng.Run()
	for _, line := range witness.ConfirmRoutingViolations(eng, properties.CheckRouteLeak(eng, cp)) {
		fmt.Printf("  %s\n", line)
	}
}
