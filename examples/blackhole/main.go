// Blackhole: reproduce §2.1 Case 1 of the paper — the cloud WAN outage
// where an ISP's unexpected advertisement of an internal prefix blackholes
// Internet traffic.
//
// Router A (facing ISP D) raises the local preference of external routes to
// 200. Router C learns the datacenter prefix 10.1.0.0/16 from DC at
// preference 150 and advertises it to A and B. When D unexpectedly
// advertises the same prefix, A's copy wins at C; C's best route becomes
// iBGP-learned, C stops re-advertising to B (iBGP non-transit), and B —
// whose upstream statically forwards the prefix's traffic to it — drops
// everything.
//
// The example shows both the control-plane view (symbolic RIBs under the
// two environments) and the data-plane view (the BLACKHOLE packet
// equivalence class).
//
// Run with:
//
//	go run ./examples/blackhole
package main

import (
	"fmt"
	"log"

	"github.com/expresso-verify/expresso"
	"github.com/expresso-verify/expresso/internal/bdd"
	"github.com/expresso-verify/expresso/internal/epvp"
	"github.com/expresso-verify/expresso/internal/properties"
	"github.com/expresso-verify/expresso/internal/route"
	"github.com/expresso-verify/expresso/internal/spf"
	"github.com/expresso-verify/expresso/internal/testnet"
)

func main() {
	net, err := expresso.Load(testnet.Case1Blackhole)
	if err != nil {
		log.Fatal(err)
	}

	// Run the staged pipeline directly for fine-grained inspection.
	eng := epvp.New(net.Topo, epvp.FullMode())
	cp := eng.Run()
	dp := spf.Run(eng, cp)

	prefix := route.MustParsePrefix("10.1.0.0/16")
	fmt.Printf("checking reachability of %s under arbitrary external routes\n\n", prefix)

	// BlackHoleFree restricted to the datacenter prefix. Keep only the
	// interesting findings: the datacenter itself IS advertising its
	// prefix, yet the traffic still drops somewhere.
	dcAdvertising := eng.Space.M.Var(dp.DataVar("DC", 16))
	violations := properties.CheckBlackHole(eng, dp, dp.DestPredicate(prefix))
	found := false
	for _, v := range violations {
		cond := eng.Space.M.And(v.Cond, dcAdvertising)
		if cond == bdd.False {
			continue
		}
		found = true
		fmt.Printf("violation: %s\n", v)
		fmt.Println("  the blackhole materializes even while the datacenter advertises,")
		fmt.Println("  under this external-route environment:")
		describeCondition(eng, dp, cond)
	}
	if !found {
		fmt.Println("no blackhole possible while the DC advertises — unexpected!")
		return
	}

	fmt.Println("\nforwarding behavior of 10.1.0.0/16 traffic entering at B:")
	for _, pec := range dp.PECsFrom("B", "") {
		if overlap := eng.Space.M.And(pec.Pkt, dp.DestPredicate(prefix)); overlap != bdd.False {
			fmt.Printf("  %s under condition:\n", pec)
			describeCondition(eng, dp, dp.CondOfPkt(overlap))
		}
	}
}

// describeCondition prints one satisfying environment of a data-plane
// advertiser condition: for each neighbor, which prefix lengths it must
// advertise (or withhold) to realize the scenario.
func describeCondition(eng *epvp.Engine, dp *spf.Result, cond bdd.Node) {
	assign := eng.Space.M.AnySat(cond)
	if assign == nil {
		fmt.Println("    (unsatisfiable)")
		return
	}
	for _, nbr := range eng.Net.Externals {
		var advertises, withholds []int
		for l := 0; l <= 32; l++ {
			val, mentioned := assign[dp.DataVar(nbr, l)]
			if !mentioned {
				continue
			}
			if val {
				advertises = append(advertises, l)
			} else {
				withholds = append(withholds, l)
			}
		}
		switch {
		case len(advertises) > 0:
			fmt.Printf("    %s advertises covering routes at lengths %v (withholding the rest)\n", nbr, advertises)
		case len(withholds) > 0:
			fmt.Printf("    %s advertises nothing covering the prefix\n", nbr)
		}
	}
}
