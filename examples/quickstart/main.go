// Quickstart: verify the paper's Figure 4 example network.
//
// The network has two peering routers (PR1, PR2) in AS 300 facing two ISPs.
// Best practice tags external routes with community 300:100 on import and
// denies tagged routes on export — but PR1's iBGP session to PR2 is missing
// "advertise-community", so the tag is stripped in flight and PR2 leaks
// ISP1's routes to ISP2.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/expresso-verify/expresso"
	"github.com/expresso-verify/expresso/internal/testnet"
)

func main() {
	net, err := expresso.Load(testnet.Figure4)
	if err != nil {
		log.Fatal(err)
	}

	report, err := net.Verify(expresso.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analyzed %d routers with %d external neighbors in %v\n",
		report.Stats.Nodes, report.Stats.Peers, report.Timing.Total().Round(1e6))
	fmt.Printf("EPVP converged after %d iterations; %d symbolic routes, %d PECs\n\n",
		report.Iterations, report.RIBRoutes, report.PECs)

	if len(report.Violations) == 0 {
		fmt.Println("no violations — unexpected for this misconfigured network!")
		return
	}
	fmt.Println("violations found:")
	for _, v := range report.Violations {
		fmt.Printf("  %s\n", v)
		fmt.Printf("    witness prefix: %s, triggered by: %v\n", v.Prefix, v.Originators)
	}

	// Verify the repaired configuration: the leak disappears.
	fixed, err := expresso.Load(testnet.Figure4Fixed)
	if err != nil {
		log.Fatal(err)
	}
	fixedReport, err := fixed.Verify(expresso.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter adding advertise-community to PR1's session: %d violations\n",
		len(fixedReport.Violations))
}
