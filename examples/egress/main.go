// Egress: check the EgressPreference property of §6.3 on the Figure 4
// network — "when multiple paths to the same Internet prefix exist, exit
// through the preferred neighbor".
//
// PR1 raises the local preference of ISP1's routes to 200, so the network
// intends ISP1 > ISP2 as the egress for the permitted Internet prefixes.
// The check confirms the intended order holds and demonstrates that the
// reversed order is violated (with the advertiser condition as a witness).
//
// Run with:
//
//	go run ./examples/egress
package main

import (
	"fmt"
	"log"

	"github.com/expresso-verify/expresso"
	"github.com/expresso-verify/expresso/internal/epvp"
	"github.com/expresso-verify/expresso/internal/properties"
	"github.com/expresso-verify/expresso/internal/route"
	"github.com/expresso-verify/expresso/internal/spf"
	"github.com/expresso-verify/expresso/internal/testnet"
)

func main() {
	net, err := expresso.Load(testnet.Figure4)
	if err != nil {
		log.Fatal(err)
	}
	eng := epvp.New(net.Topo, epvp.FullMode())
	cp := eng.Run()
	dp := spf.Run(eng, cp)

	dest := route.MustParsePrefix("128.0.0.0/2")

	fmt.Printf("EgressPreference for traffic from PR1 to %s\n\n", dest)

	check := func(order []string) {
		fmt.Printf("preference order %v: ", order)
		vs := properties.CheckEgressPreference(eng, dp, "PR1", dest, order)
		if len(vs) == 0 {
			fmt.Println("holds under every external-route environment")
			return
		}
		fmt.Println("VIOLATED")
		for _, v := range vs {
			fmt.Printf("  %s\n", v.Detail)
		}
	}

	// The intended order (ISP1 preferred via local-pref 200): holds.
	check([]string{"ISP1", "ISP2"})
	// The reversed order: violated whenever both neighbors advertise.
	check([]string{"ISP2", "ISP1"})
}
