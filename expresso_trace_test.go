package expresso_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"github.com/expresso-verify/expresso"
	"github.com/expresso-verify/expresso/internal/netgen"
	"github.com/expresso-verify/expresso/internal/telemetry"
	"github.com/expresso-verify/expresso/internal/testnet"
)

// TestVerifyTextTrace runs the staged verifier with a tracer attached and
// checks the trace covers the whole run: one span per pipeline stage,
// exactly one round event per EPVP iteration, per-router SPF events, and
// a schema-stamped JSON document that round-trips.
func TestVerifyTextTrace(t *testing.T) {
	tracer := expresso.NewTracer()
	opts := expresso.Options{
		Properties: []expresso.Kind{
			expresso.RouteLeakFree, expresso.RouteHijackFree, expresso.TrafficHijackFree,
		},
		Trace: tracer,
	}
	v := expresso.NewVerifier(expresso.VerifierConfig{})
	rep, info, err := v.VerifyText(context.Background(), testnet.Figure4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("EPVP did not converge")
	}

	trace := tracer.Finish()
	if trace.Schema != telemetry.SchemaVersion {
		t.Errorf("trace schema = %q, want %q", trace.Schema, telemetry.SchemaVersion)
	}
	if trace.Digest != info.Digest {
		t.Errorf("trace digest = %q, want the run digest %q", trace.Digest, info.Digest)
	}
	if trace.Workers != rep.Timing.Workers {
		t.Errorf("trace workers = %d, want %d", trace.Workers, rep.Timing.Workers)
	}

	spansByName := map[string]int{}
	for _, sp := range trace.Spans {
		spansByName[sp.Name]++
	}
	for _, stage := range []string{"load", "src", "routing_analysis", "spf", "forwarding_analysis", "report"} {
		if spansByName[stage] < 1 {
			t.Errorf("no span for stage %q (spans %v)", stage, spansByName)
		}
	}

	if len(trace.EPVPRounds) != rep.Iterations {
		t.Errorf("trace has %d EPVP rounds, report says %d iterations",
			len(trace.EPVPRounds), rep.Iterations)
	}
	for i, r := range trace.EPVPRounds {
		if r.Round != i+1 {
			t.Fatalf("round %d is numbered %d", i, r.Round)
		}
		if r.BDDNodes <= 0 {
			t.Errorf("round %d records %d BDD nodes", r.Round, r.BDDNodes)
		}
	}
	if trace.EPVPRounds[0].Recomputed == 0 {
		t.Error("first round recomputed no routers")
	}

	if len(trace.SPFFIBs) == 0 {
		t.Error("no SPF FIB events despite a forwarding property")
	}
	if len(trace.SPFForwards) == 0 {
		t.Error("no SPF forwarding events despite a forwarding property")
	}
	if len(trace.PECCoalesce) == 0 {
		t.Error("no PEC-coalescing events")
	}

	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back telemetry.Trace
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if back.Schema != trace.Schema || len(back.EPVPRounds) != len(trace.EPVPRounds) ||
		len(back.Spans) != len(trace.Spans) {
		t.Errorf("round-tripped trace lost data")
	}
}

// TestVerifyTraceCacheHit checks a report-cache hit still produces a
// valid trace: identity metadata plus the report-stage span.
func TestVerifyTraceCacheHit(t *testing.T) {
	opts := expresso.Options{Properties: []expresso.Kind{expresso.RouteLeakFree}}
	v := expresso.NewVerifier(expresso.VerifierConfig{})
	ctx := context.Background()
	if _, _, err := v.VerifyText(ctx, testnet.Figure4, opts); err != nil {
		t.Fatal(err)
	}

	opts.Trace = expresso.NewTracer()
	_, info, err := v.VerifyText(ctx, testnet.Figure4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !info.CacheHit {
		t.Fatal("second run was not a report-cache hit")
	}
	trace := opts.Trace.Finish()
	if trace.Digest != info.Digest {
		t.Errorf("trace digest = %q, want %q", trace.Digest, info.Digest)
	}
	if len(trace.Spans) != 1 || trace.Spans[0].Name != "report" || trace.Spans[0].Status != expresso.StageHit {
		t.Errorf("cache-hit spans = %+v, want one report hit", trace.Spans)
	}
	if len(trace.EPVPRounds) != 0 {
		t.Errorf("cache hit recorded %d EPVP rounds", len(trace.EPVPRounds))
	}
}

// TestVerifyTraceDirect checks the non-staged entry point (Network.Verify)
// also records rounds and stage spans — everything except the load stage,
// which only the text path times.
func TestVerifyTraceDirect(t *testing.T) {
	net, err := expresso.Load(testnet.Figure4)
	if err != nil {
		t.Fatal(err)
	}
	opts := expresso.Options{Trace: expresso.NewTracer()}
	rep, err := net.Verify(opts)
	if err != nil {
		t.Fatal(err)
	}
	trace := opts.Trace.Finish()
	if len(trace.EPVPRounds) != rep.Iterations {
		t.Errorf("trace has %d rounds, report says %d iterations",
			len(trace.EPVPRounds), rep.Iterations)
	}
	names := map[string]bool{}
	for _, sp := range trace.Spans {
		names[sp.Name] = true
	}
	for _, stage := range []string{"src", "routing_analysis", "spf", "forwarding_analysis"} {
		if !names[stage] {
			t.Errorf("no span for stage %q", stage)
		}
	}
}

// TestTraceOverhead prices the enabled tracing path against the nil-tracer
// baseline and asserts it stays under 5% on the region-1 fixture. It is a
// tier-2 check — timing-sensitive, so it only runs when the bench-trace
// target sets EXPRESSO_TRACE_OVERHEAD=1.
func TestTraceOverhead(t *testing.T) {
	if os.Getenv("EXPRESSO_TRACE_OVERHEAD") != "1" {
		t.Skip("timing-sensitive; set EXPRESSO_TRACE_OVERHEAD=1 (make bench-trace) to run")
	}
	text := netgen.CSP(netgen.CSPOldRegion(1))
	verify := func(traced bool) {
		net, err := expresso.Load(text)
		if err != nil {
			t.Fatal(err)
		}
		opts := expresso.Options{Properties: []expresso.Kind{expresso.RouteLeakFree}}
		if traced {
			opts.Trace = expresso.NewTracer()
		}
		if _, err := net.Verify(opts); err != nil {
			t.Fatal(err)
		}
	}
	// Min-of-3 per mode, interleaved: the minimum is robust against
	// one-off scheduler noise, and interleaving cancels slow drift.
	verify(false) // warm-up
	const rounds = 3
	minNS := func(cur, d float64) float64 {
		if cur == 0 || d < cur {
			return d
		}
		return cur
	}
	var base, traced float64
	for i := 0; i < rounds; i++ {
		start := time.Now()
		verify(false)
		base = minNS(base, float64(time.Since(start).Nanoseconds()))
		start = time.Now()
		verify(true)
		traced = minNS(traced, float64(time.Since(start).Nanoseconds()))
	}
	overhead := (traced - base) / base
	t.Logf("base %.0f ns/op, traced %.0f ns/op, overhead %.2f%%", base, traced, 100*overhead)
	if overhead > 0.05 {
		t.Errorf("tracing overhead %.2f%% exceeds 5%%", 100*overhead)
	}
}
