module github.com/expresso-verify/expresso

go 1.22
