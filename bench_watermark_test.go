package expresso_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/expresso-verify/expresso"
	"github.com/expresso-verify/expresso/internal/netgen"
)

// TestRegion1MemWatermark records the region-1 memory watermark into
// BENCH_pr9.json: one traced verification, reporting the peak live BDD
// node/byte count observed at the schedule-independent sample points
// (reclaim entry, EPVP round barriers, SPF completion). Gated behind
// EXPRESSO_MEM_WATERMARK because it runs the full region-1 fixture and
// writes a file into the repository; `make bench-memwatermark` sets it.
func TestRegion1MemWatermark(t *testing.T) {
	if os.Getenv("EXPRESSO_MEM_WATERMARK") == "" {
		t.Skip("set EXPRESSO_MEM_WATERMARK=1 (make bench-memwatermark) to record the region-1 watermark")
	}
	text := netgen.CSP(netgen.CSPOldRegion(1))
	net, err := expresso.Load(text)
	if err != nil {
		t.Fatal(err)
	}
	tracer := expresso.NewTracer()
	opts := expresso.Options{
		Properties: []expresso.Kind{expresso.RouteLeakFree},
		Trace:      tracer,
	}
	start := time.Now()
	if _, err := net.Verify(opts); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	tr := tracer.Finish()
	if tr.Watermark == nil {
		t.Fatal("traced run produced no watermark footer")
	}
	wm := tr.Watermark
	if wm.PeakLiveNodes <= 0 || wm.Samples <= 0 {
		t.Fatalf("implausible watermark: %+v", wm)
	}
	if wm.PeakLiveNodes < wm.EndLiveNodes {
		t.Fatalf("peak %d below end-of-run live count %d", wm.PeakLiveNodes, wm.EndLiveNodes)
	}

	record := map[string]any{
		"benchmark":         "Region1MemWatermark",
		"fixture":           "region1 (CSP old topology)",
		"properties":        []string{"leak"},
		"peak_live_nodes":   wm.PeakLiveNodes,
		"peak_live_bytes":   wm.PeakLiveBytes,
		"end_live_nodes":    wm.EndLiveNodes,
		"end_live_bytes":    wm.EndLiveBytes,
		"watermark_samples": wm.Samples,
		"complement_share":  wm.ComplementShare,
		"epvp_rounds":       len(tr.EPVPRounds),
		"duration_ns":       elapsed.Nanoseconds(),
		"environment": map[string]any{
			"go":    runtime.Version(),
			"cores": runtime.NumCPU(),
		},
	}
	out, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pr9.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("region-1 watermark: peak %d nodes (%d bytes) over %d samples, end %d nodes",
		wm.PeakLiveNodes, wm.PeakLiveBytes, wm.Samples, wm.EndLiveNodes)
}
