package expresso_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/expresso-verify/expresso"
	"github.com/expresso-verify/expresso/internal/telemetry"
	"github.com/expresso-verify/expresso/internal/testnet"
	"github.com/expresso-verify/expresso/internal/traceview"
)

// TestTraceDiffGolden is the end-to-end regression-attribution check
// behind `expresso trace diff` (wired into CI as make trace-check): a
// real traced run is written to disk, a copy with a deliberately inflated
// spf stage is written beside it, and the diff must attribute the
// slowdown to spf — and only spf — while the untouched stages, rounds,
// and watermark report zero drift.
func TestTraceDiffGolden(t *testing.T) {
	tracer := expresso.NewTracer()
	opts := expresso.Options{
		Properties: []expresso.Kind{expresso.RouteLeakFree, expresso.TrafficHijackFree},
		Trace:      tracer,
	}
	v := expresso.NewVerifier(expresso.VerifierConfig{})
	if _, _, err := v.VerifyText(context.Background(), testnet.Figure4, opts); err != nil {
		t.Fatal(err)
	}
	base := tracer.Finish()
	if base.Watermark == nil || base.Watermark.PeakLiveNodes <= 0 {
		t.Fatalf("traced run has no watermark footer: %+v", base.Watermark)
	}

	dir := t.TempDir()
	writeTrace := func(name string, tr *telemetry.Trace) string {
		t.Helper()
		raw, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := writeTrace("old.json", base)

	// The injected slowdown: double spf and add 100ms — far beyond both
	// the 25% relative threshold and the 1ms absolute floor. Everything
	// else is byte-identical, so attribution is deterministic.
	slow := *base
	slow.Spans = append([]telemetry.Span(nil), base.Spans...)
	var injected bool
	for i, sp := range slow.Spans {
		if sp.Name == "spf" {
			grow := sp.Duration + int64(100*time.Millisecond)
			slow.Spans[i].Duration += grow
			slow.Duration += grow
			injected = true
		}
	}
	if !injected {
		t.Fatal("trace has no spf span to inflate")
	}
	newPath := writeTrace("new.json", &slow)

	oldTr, err := traceview.Load(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newTr, err := traceview.Load(newPath)
	if err != nil {
		t.Fatal(err)
	}
	rep := traceview.Diff(oldTr, newTr, 0.25)
	if !rep.Regressed {
		t.Fatal("injected spf slowdown not flagged as a regression")
	}
	if rep.Worst != "spf" {
		t.Fatalf("worst stage = %q, want spf", rep.Worst)
	}
	for _, d := range rep.Stages {
		if d.Stage == "spf" {
			if !d.Regressed {
				t.Errorf("spf not flagged: %+v", d)
			}
			continue
		}
		if d.Regressed {
			t.Errorf("untouched stage %q flagged: %+v", d.Stage, d)
		}
		if d.DeltaNS != 0 {
			t.Errorf("untouched stage %q has nonzero delta %d", d.Stage, d.DeltaNS)
		}
	}
	for _, r := range rep.Rounds {
		if r.GrowthDelta != 0 || r.DeltaNS != 0 {
			t.Errorf("untouched round %d drifted: %+v", r.Round, r)
		}
	}
	if rep.PeakDelta != 0 {
		t.Errorf("watermark peak delta = %d, want 0", rep.PeakDelta)
	}

	// The reverse diff (slow → fast) must not flag: stages only regress
	// when they grow.
	if back := traceview.Diff(newTr, oldTr, 0.25); back.Regressed {
		t.Fatalf("speedup flagged as regression: %+v", back)
	}
}
