package expresso

import (
	"encoding/json"
	"runtime"
	"testing"

	"github.com/expresso-verify/expresso/internal/netgen"
	"github.com/expresso-verify/expresso/internal/testnet"
)

// reportJSON marshals a report with the run-dependent fields (wall-clock
// timings, worker count, heap) zeroed, so two runs of the same network can
// be compared byte for byte.
func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	r := *rep
	r.Timing = Timing{}
	r.HeapBytes = 0
	out, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestParallelDeterminism asserts that a parallel run (Workers: 4) produces
// a byte-identical report to the sequential reference (Workers: 1) on every
// fixture: same violations in the same order, same witnesses, same RIB and
// PEC counts. BDD handle numbering is scheduling-dependent across runs, so
// this only holds because everything report-visible is ordered by
// run-independent structural keys.
func TestParallelDeterminism(t *testing.T) {
	fixtures := []struct {
		name string
		cfg  string
		opts Options
	}{
		{"figure4", testnet.Figure4, Options{}},
		{"figure4-fixed", testnet.Figure4Fixed, Options{}},
		{"case1-blackhole", testnet.Case1Blackhole,
			Options{Properties: []Kind{RouteLeakFree, BlackHoleFree, LoopFree}}},
		{"case2-route-leak", testnet.Case2RouteLeak, Options{}},
		{"region1-small", netgen.CSP(netgen.CSPOldRegion(1).WithPeers(3)),
			Options{Properties: []Kind{RouteLeakFree, RouteHijackFree, TrafficHijackFree}}},
	}
	for _, f := range fixtures {
		f := f
		t.Run(f.name, func(t *testing.T) {
			net, err := Load(f.cfg)
			if err != nil {
				t.Fatal(err)
			}
			seq := f.opts
			seq.Workers = 1
			repSeq, err := net.Verify(seq)
			if err != nil {
				t.Fatal(err)
			}
			if repSeq.Timing.Workers != 1 {
				t.Errorf("sequential Timing.Workers = %d, want 1", repSeq.Timing.Workers)
			}
			want := reportJSON(t, repSeq)

			par := f.opts
			par.Workers = 4
			for run := 0; run < 2; run++ { // twice: scheduling varies between runs
				repPar, err := net.Verify(par)
				if err != nil {
					t.Fatal(err)
				}
				if repPar.Timing.Workers != 4 {
					t.Errorf("parallel Timing.Workers = %d, want 4", repPar.Timing.Workers)
				}
				got := reportJSON(t, repPar)
				if string(got) != string(want) {
					t.Fatalf("run %d: parallel report differs from sequential:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
						run, want, got)
				}
			}
		})
	}
}

// TestParallelDeterminismWithReclaim re-runs the determinism matrix with
// a tiny EXPRESSO_RECLAIM budget, forcing a dead-node sweep at every EPVP
// round boundary and before SPF. Reclamation recycles handle numbers and
// compacts the unique table mid-run; reports must still be byte-identical
// to a no-reclamation sequential run at every worker count, because the
// sweep trigger is a function of the schedule-independent canonical node
// set and everything report-visible is ordered by structural keys.
func TestParallelDeterminismWithReclaim(t *testing.T) {
	fixtures := []struct {
		name string
		cfg  string
		opts Options
	}{
		{"figure4", testnet.Figure4, Options{}},
		{"case1-blackhole", testnet.Case1Blackhole,
			Options{Properties: []Kind{RouteLeakFree, BlackHoleFree, LoopFree}}},
		{"region1-small", netgen.CSP(netgen.CSPOldRegion(1).WithPeers(3)),
			Options{Properties: []Kind{RouteLeakFree, RouteHijackFree, TrafficHijackFree}}},
	}
	for _, f := range fixtures {
		f := f
		t.Run(f.name, func(t *testing.T) {
			net, err := Load(f.cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Baseline: sequential, reclamation disabled.
			t.Setenv("EXPRESSO_RECLAIM", "off")
			seq := f.opts
			seq.Workers = 1
			repOff, err := net.Verify(seq)
			if err != nil {
				t.Fatal(err)
			}
			want := reportJSON(t, repOff)

			// Sweep-heavy runs at both worker counts must match it.
			t.Setenv("EXPRESSO_RECLAIM", "200")
			for _, workers := range []int{1, 4} {
				opts := f.opts
				opts.Workers = workers
				rep, err := net.Verify(opts)
				if err != nil {
					t.Fatal(err)
				}
				if got := reportJSON(t, rep); string(got) != string(want) {
					t.Fatalf("workers=%d with forced sweeps differs from no-reclaim baseline:\n--- off ---\n%s\n--- sweeps ---\n%s",
						workers, want, got)
				}
			}
		})
	}
}

// TestWorkersDefault checks the Workers plumbing: 0 resolves to GOMAXPROCS
// and the resolved count is surfaced in Report.Timing.
func TestWorkersDefault(t *testing.T) {
	t.Setenv("EXPRESSO_WORKERS", "") // isolate from the CI race knob
	net, err := Load(testnet.Figure4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := net.Verify(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); rep.Timing.Workers != want {
		t.Errorf("Timing.Workers = %d, want GOMAXPROCS = %d", rep.Timing.Workers, want)
	}
}

// TestWorkersExcludedFromCacheKey pins the cache-key contract: the worker
// count changes scheduling, never results, so it must not fragment the
// service result cache.
func TestWorkersExcludedFromCacheKey(t *testing.T) {
	a := Options{Workers: 1}
	b := Options{Workers: 8}
	if a.CacheKey() != b.CacheKey() {
		t.Error("CacheKey must not depend on Workers")
	}
}
