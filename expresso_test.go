package expresso

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/expresso-verify/expresso/internal/netgen"
	"github.com/expresso-verify/expresso/internal/route"
	"github.com/expresso-verify/expresso/internal/testnet"
)

func TestVerifyFigure4(t *testing.T) {
	net, err := Load(testnet.Figure4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := net.Verify(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Error("EPVP should converge")
	}
	counts := rep.CountByKind()
	if counts[RouteLeakFree] != 1 {
		t.Errorf("route leaks = %d, want 1", counts[RouteLeakFree])
	}
	if rep.Timing.SRC <= 0 || rep.Timing.SPF <= 0 {
		t.Error("stage timings should be positive")
	}
	if rep.PECs == 0 || rep.RIBRoutes == 0 {
		t.Error("report should include RIB and PEC sizes")
	}
	if rep.Stats.Nodes != 2 || rep.Stats.Peers != 2 {
		t.Errorf("stats = %+v", rep.Stats)
	}
}

func TestVerifyFixedClean(t *testing.T) {
	net, err := Load(testnet.Figure4Fixed)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := net.Verify(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("fixed config should be clean, got %v", rep.Violations)
	}
}

func TestVerifyRoutingOnlySkipsSPF(t *testing.T) {
	net, err := Load(testnet.Figure4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := net.Verify(Options{Properties: []Kind{RouteLeakFree}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PECs != 0 || rep.Timing.SPF != 0 {
		t.Error("routing-only verification must skip SPF")
	}
}

func TestVerifyBTERequiresCommunity(t *testing.T) {
	net, err := Load(testnet.Figure4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Verify(Options{Properties: []Kind{BlockToExternal}}); err == nil {
		t.Error("BlockToExternal without BTE community should error")
	}
	if _, err := net.Verify(Options{
		Properties: []Kind{BlockToExternal},
		BTE:        route.MustParseCommunity("1:1"),
	}); err != nil {
		t.Errorf("BTE check failed: %v", err)
	}
}

func TestVerifyExpressoMinus(t *testing.T) {
	net, err := Load(testnet.Figure4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := net.Verify(Options{Mode: ExpressoMinusMode()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CountByKind()[RouteLeakFree] != 1 {
		t.Error("Expresso- should still find the leak")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("garbage"); err == nil {
		t.Error("bad config should fail")
	}
	if _, err := LoadDir("/nonexistent-dir"); err == nil {
		t.Error("missing dir should fail")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "net.cfg"), []byte(testnet.Figure4), 0o644); err != nil {
		t.Fatal(err)
	}
	net, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Topo.Internals) != 2 {
		t.Error("LoadDir parsed wrong device count")
	}
}

func TestVerifyRegion1(t *testing.T) {
	// End-to-end on a generated dataset: region1 has one hijack bug.
	net, err := Load(netgen.CSP(netgen.CSPOldRegion(1)))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := net.Verify(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("region1 did not converge")
	}
	counts := rep.CountByKind()
	if counts[RouteHijackFree] == 0 {
		t.Error("region1's seeded hijack not found")
	}
	if counts[RouteLeakFree] != 0 {
		t.Errorf("region1 has no leak bugs, found %d", counts[RouteLeakFree])
	}
	t.Logf("region1: %v (SRC %v, SPF %v, RIB %d, PECs %d)",
		counts, rep.Timing.SRC, rep.Timing.SPF, rep.RIBRoutes, rep.PECs)
}
