package expresso

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/expresso-verify/expresso/internal/route"
	"github.com/expresso-verify/expresso/internal/testnet"
	"github.com/expresso-verify/expresso/internal/topology"
)

// TestReportJSONRoundTrip checks that Report, Timing, and Violation
// marshal to stable JSON and decode back to an equal value.
func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Stats: topology.Stats{Nodes: 3, Links: 2, Peers: 4, Prefixes: 5, ConfigLines: 42},
		Violations: []Violation{{
			Kind:        RouteLeakFree,
			Node:        "ISP2",
			Detail:      "route originated by ISP1 reaches ISP2",
			Prefix:      route.MustParsePrefix("128.0.0.0/2"),
			Path:        []string{"ISP1", "PR1", "PR2", "ISP2"},
			Originators: []string{"ISP1"},
		}},
		Timing: Timing{
			SRC:                123 * time.Millisecond,
			RoutingAnalysis:    4 * time.Millisecond,
			SPF:                56 * time.Millisecond,
			ForwardingAnalysis: 7 * time.Millisecond,
		},
		HeapBytes:  1 << 20,
		Converged:  true,
		Iterations: 5,
		RIBRoutes:  17,
		PECs:       9,
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(rep, &back) {
		t.Errorf("round trip changed the report:\nbefore %+v\nafter  %+v", rep, &back)
	}
	// The wire names are a stable machine contract shared by the service
	// and the CLI's -json output.
	for _, key := range []string{
		`"stats"`, `"nodes"`, `"config_lines"`,
		`"violations"`, `"kind"`, `"node"`, `"detail"`, `"prefix"`, `"addr"`, `"len"`,
		`"path"`, `"originators"`,
		`"timing"`, `"src_ns"`, `"routing_analysis_ns"`, `"spf_ns"`, `"forwarding_analysis_ns"`, `"workers"`,
		`"heap_bytes"`, `"converged"`, `"iterations"`, `"rib_routes"`, `"pecs"`,
	} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON missing field %s:\n%s", key, data)
		}
	}
}

// TestRealReportJSON runs Figure 4 and round-trips the resulting report.
func TestRealReportJSON(t *testing.T) {
	net, err := Load(testnet.Figure4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := net.Verify(Options{Properties: []Kind{RouteLeakFree}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.CountByKind()[RouteLeakFree] != 1 {
		t.Errorf("decoded report lost the leak violation: %s", data)
	}
	if back.Timing.SRC != rep.Timing.SRC || back.Iterations != rep.Iterations {
		t.Error("decoded report changed timing or iteration fields")
	}
}

// TestVerifyContextCancelled checks an already-cancelled context aborts
// verification with ctx.Err before any stage runs.
func TestVerifyContextCancelled(t *testing.T) {
	net, err := Load(testnet.Figure4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := net.VerifyContext(ctx, Options{})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Error("cancelled verification must not return a report")
	}
}

// TestVerifyContextDeadline checks an expired deadline surfaces as
// DeadlineExceeded from inside the pipeline.
func TestVerifyContextDeadline(t *testing.T) {
	net, err := Load(testnet.Figure4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := net.VerifyContext(ctx, Options{}); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestOptionsCacheKeyNormalizes checks CacheKey is spelling-insensitive.
func TestOptionsCacheKeyNormalizes(t *testing.T) {
	a := Options{}.CacheKey()
	b := Options{
		Mode:       FullMode(),
		Properties: []Kind{TrafficHijackFree, RouteLeakFree, RouteHijackFree},
	}.CacheKey()
	if a != b {
		t.Errorf("default and explicit spellings differ:\n%s\n%s", a, b)
	}
	if minus := (Options{Mode: ExpressoMinusMode()}).CacheKey(); minus == a {
		t.Error("Expresso- must key differently")
	}
	// CacheKey must not mutate the caller's Properties slice order.
	props := []Kind{TrafficHijackFree, RouteLeakFree}
	_ = (Options{Properties: props}).CacheKey()
	if props[0] != TrafficHijackFree {
		t.Error("CacheKey mutated the caller's Properties slice")
	}
}
