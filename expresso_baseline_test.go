package expresso

import (
	"context"
	"fmt"
	"testing"

	"github.com/expresso-verify/expresso/internal/pipeline"
	"github.com/expresso-verify/expresso/internal/store"
	"github.com/expresso-verify/expresso/internal/testnet"
)

func findStage(info *RunInfo, stage string) (StageInfo, bool) {
	for _, st := range info.Stages {
		if st.Stage == stage {
			return st, true
		}
	}
	return StageInfo{}, false
}

// TestBaselineDeltaWarmAndByteIdentical is the acceptance check of the
// baseline/delta model: a delta verified against a registered baseline
// anchors its SRC stage on the baseline's pinned fixed point (provenance
// warm, seeded by the baseline's SRC digest) and produces a report
// byte-identical — normalized for run-dependent fields — to a scratch run
// of the patched text.
func TestBaselineDeltaWarmAndByteIdentical(t *testing.T) {
	ctx := context.Background()
	opts := Options{Workers: 1}
	base := testnet.Figure4Fixed
	changed := base + "bgp network 203.0.113.7/32\n"

	v := NewVerifier(VerifierConfig{})
	rep0, info, err := v.RegisterBaseline(ctx, "prod", base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "prod" || info.SRCDigest == "" || info.ConfigDigest == "" {
		t.Fatalf("incomplete BaselineInfo: %+v", info)
	}
	if info.Violations != len(rep0.Violations) {
		t.Errorf("info.Violations = %d, want %d", info.Violations, len(rep0.Violations))
	}
	if _, _, err := v.RegisterBaseline(ctx, "prod", base, opts); err == nil {
		t.Fatal("re-registering an existing baseline name did not error")
	}

	patch := DiffConfigs(base, changed)
	if patch.Empty() {
		t.Fatal("one-line config change diffed to an empty patch")
	}
	rep, runInfo, err := v.VerifyDelta(ctx, "prod", patch, opts)
	if err != nil {
		t.Fatal(err)
	}
	src, ok := findStage(runInfo, "src")
	if !ok {
		t.Fatalf("no SRC stage in provenance: %+v", runInfo.Stages)
	}
	if src.Status != StageWarm && src.Status != StageHit {
		t.Fatalf("delta SRC status = %q, want warm or better (stages %+v)", src.Status, runInfo.Stages)
	}
	if src.Status == StageWarm && src.Seed != info.SRCDigest {
		t.Errorf("SRC seed = %q, want the baseline's SRC digest %q", src.Seed, info.SRCDigest)
	}
	if runInfo.Baseline != "prod" {
		t.Errorf("RunInfo.Baseline = %q, want %q", runInfo.Baseline, "prod")
	}

	coldNet, err := Load(changed)
	if err != nil {
		t.Fatal(err)
	}
	coldRep, err := coldNet.Verify(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalizedJSON(t, rep), normalizedJSON(t, coldRep); got != want {
		t.Errorf("delta report differs from scratch run:\ndelta: %s\ncold:  %s", got, want)
	}
}

// TestBaselineSurvivesCachePressure pins the tentpole property the old
// opportunistic warm scan could not give: the baseline's converged state
// stays available after the SRC stage cache has evicted it. The registry
// holds its own BDD pins, so eviction neither frees the nodes nor breaks
// the warm anchor.
func TestBaselineSurvivesCachePressure(t *testing.T) {
	ctx := context.Background()
	opts := Options{Workers: 1}
	base := testnet.Figure4Fixed

	v := NewVerifier(VerifierConfig{SRCCache: 2})
	_, info, err := v.RegisterBaseline(ctx, "prod", base, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Four semantically distinct configs through a 2-entry SRC cache
	// guarantee the baseline's artifact is evicted.
	for i := 0; i < 4; i++ {
		other := base + fmt.Sprintf("bgp network 198.51.100.%d/32\n", i)
		if _, _, err := v.VerifyText(ctx, other, opts); err != nil {
			t.Fatal(err)
		}
	}

	// An unchanged config under different options misses the report cache
	// but matches the baseline's SRC key exactly: the registry serves the
	// pinned artifact as a hit even though the cache dropped it.
	leakOnly := Options{Workers: 1, Properties: []Kind{RouteLeakFree}}
	_, exactInfo, err := v.VerifyTextFrom(ctx, "prod", base, leakOnly)
	if err != nil {
		t.Fatal(err)
	}
	if src, _ := findStage(exactInfo, "src"); src.Status != StageHit {
		t.Errorf("post-eviction exact-key SRC status = %q, want %q (note %q)", src.Status, StageHit, src.Note)
	}

	// A real delta warm-starts from the baseline, not from whatever the
	// cache happens to hold.
	changed := base + "bgp network 203.0.113.9/32\n"
	rep, runInfo, err := v.VerifyDelta(ctx, "prod", DiffConfigs(base, changed), opts)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := findStage(runInfo, "src")
	if src.Status != StageWarm {
		t.Fatalf("post-eviction delta SRC status = %q, want %q (stages %+v)", src.Status, StageWarm, runInfo.Stages)
	}
	if src.Seed != info.SRCDigest {
		t.Errorf("post-eviction SRC seed = %q, want baseline digest %q", src.Seed, info.SRCDigest)
	}

	coldNet, err := Load(changed)
	if err != nil {
		t.Fatal(err)
	}
	coldRep, err := coldNet.Verify(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalizedJSON(t, rep), normalizedJSON(t, coldRep); got != want {
		t.Errorf("post-eviction delta report differs from scratch run:\ndelta: %s\ncold:  %s", got, want)
	}

	if !v.RemoveBaseline("prod") {
		t.Error("RemoveBaseline(prod) = false, want true")
	}
	if _, ok := v.Baseline("prod"); ok {
		t.Error("baseline still resolvable after removal")
	}
}

// TestStoreGCBaselineRoots exercises `expresso store gc` end to end: the
// blobs a registered baseline's manifest references survive the sweep,
// anonymous verification artifacts are pruned, a dry run deletes nothing,
// and removing the baseline makes everything collectable.
func TestStoreGCBaselineRoots(t *testing.T) {
	ctx := context.Background()
	opts := Options{Workers: 1}
	dir := t.TempDir()

	v := NewVerifier(VerifierConfig{StoreDir: dir})
	if _, _, err := v.RegisterBaseline(ctx, "keep", testnet.Figure4Fixed, opts); err != nil {
		t.Fatal(err)
	}
	// An anonymous verification writes blobs no manifest references.
	if _, _, err := v.VerifyText(ctx, testnet.Figure4, opts); err != nil {
		t.Fatal(err)
	}
	d, ok := v.Store().(*store.Disk)
	if !ok {
		t.Fatalf("verifier store is %T, want *store.Disk", v.Store())
	}
	before := len(d.Keys())

	dry := pipeline.GCStore(d, true)
	if dry.Baselines != 1 {
		t.Fatalf("dry run saw %d baselines, want 1", dry.Baselines)
	}
	if len(dry.Kept) == 0 || len(dry.Pruned) == 0 {
		t.Fatalf("dry run kept=%d pruned=%d, want both nonzero", len(dry.Kept), len(dry.Pruned))
	}
	if got := len(d.Keys()); got != before {
		t.Fatalf("dry run changed the store: %d blobs, was %d", got, before)
	}

	res := pipeline.GCStore(d, false)
	if len(res.Pruned) != len(dry.Pruned) || res.PrunedBytes != dry.PrunedBytes {
		t.Errorf("real sweep pruned %d blobs (%d bytes), dry run predicted %d (%d bytes)",
			len(res.Pruned), res.PrunedBytes, len(dry.Pruned), dry.PrunedBytes)
	}
	after := map[string]bool{}
	for _, k := range d.Keys() {
		after[k.Stage+"/"+k.Digest] = true
	}
	for _, k := range res.Kept {
		if !after[k.Stage+"/"+k.Digest] {
			t.Errorf("kept blob %s/%s missing after sweep", k.Stage, k.Digest)
		}
	}
	for _, k := range res.Pruned {
		if after[k.Stage+"/"+k.Digest] {
			t.Errorf("pruned blob %s/%s still present after sweep", k.Stage, k.Digest)
		}
	}

	// A cold process sharing the directory still warm-starts the
	// baseline's config from disk.
	v2 := NewVerifier(VerifierConfig{StoreDir: dir})
	_, info2, err := v2.VerifyText(ctx, testnet.Figure4Fixed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s := stageStatus(info2, "src"); s != StageDisk {
		t.Errorf("baseline config SRC after gc = %q, want %q", s, StageDisk)
	}

	// Dropping the baseline drops its manifest; the next sweep collects
	// the rest.
	if !v.RemoveBaseline("keep") {
		t.Fatal("RemoveBaseline(keep) = false")
	}
	final := pipeline.GCStore(d, false)
	if final.Baselines != 0 {
		t.Errorf("final sweep saw %d baselines, want 0", final.Baselines)
	}
	if got := len(d.Keys()); got != 0 {
		t.Errorf("%d blobs survive with no baselines registered: %+v", got, d.Keys())
	}
}
