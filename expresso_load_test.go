package expresso

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/expresso-verify/expresso/internal/testnet"
)

func TestLoadMalformedConfig(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"statement before router", "bgp as 5\n", "before any 'router'"},
		{"empty text", "", "no 'router' sections"},
		{"comments only", "// nothing here\n# nor here\n", "no 'router' sections"},
		{"bad prefix", "router A\nbgp network 999.0.0.0/8\n", "config:"},
	}
	for _, tc := range cases {
		net, err := Load(tc.text)
		if err == nil {
			t.Errorf("%s: Load succeeded (%v), want error", tc.name, net)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err %q does not contain %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestLoadDirNonexistent(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "does-not-exist")); err == nil {
		t.Fatal("LoadDir on a nonexistent directory succeeded")
	}
}

func TestLoadDirNoConfigs(t *testing.T) {
	dir := t.TempDir()
	// An unrelated file must not count as a configuration.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("router A\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDir(dir)
	if err == nil {
		t.Fatal("LoadDir on a directory without *.cfg files succeeded")
	}
	if !strings.Contains(err.Error(), "no router definitions") {
		t.Errorf("err %q does not explain the empty directory", err)
	}
}

func TestLoadDirMalformedFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.cfg"), []byte("bgp as 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDir(dir)
	if err == nil {
		t.Fatal("LoadDir with a malformed *.cfg succeeded")
	}
	if !strings.Contains(err.Error(), "bad.cfg") {
		t.Errorf("err %q does not name the offending file", err)
	}
}

func TestLoadDirValid(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "net.cfg"), []byte(testnet.Figure4Fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	net, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if got := net.Topo.Statistics().Nodes; got != 2 {
		t.Errorf("nodes = %d, want 2", got)
	}
}
