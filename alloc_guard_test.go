package expresso_test

import (
	"os"
	"runtime"
	"testing"

	"github.com/expresso-verify/expresso"
	"github.com/expresso-verify/expresso/internal/netgen"
)

// region1AllocCeiling is the allocation-regression budget for one cold
// region-1 verification. The PR-5 BDD overhaul (bounded lossy operation
// caches replacing exact rehashing memo tables) brought the run from
// ~224 MB to ~112 MB of allocations; the ceiling sits between the two
// with headroom for noise, so a regression back to unbounded memo churn
// fails loudly while normal variance passes.
const region1AllocCeiling = 150 << 20

// TestRegion1AllocGuard is the env-gated allocation-regression guard:
// it verifies region 1 cold and fails if the run allocates more than
// region1AllocCeiling bytes. Gated behind EXPRESSO_ALLOC_GUARD because
// the measurement needs a quiet heap (about a minute of wall clock with
// warm-up, and meaningless when other tests run concurrently); `make
// alloc-guard` — part of `make ci` — sets the variable.
func TestRegion1AllocGuard(t *testing.T) {
	if os.Getenv("EXPRESSO_ALLOC_GUARD") == "" {
		t.Skip("set EXPRESSO_ALLOC_GUARD=1 (make alloc-guard) to run the allocation-regression guard")
	}
	text := netgen.CSP(netgen.CSPOldRegion(1))
	opts := expresso.Options{Properties: []expresso.Kind{expresso.RouteLeakFree}}
	run := func() {
		net, err := expresso.Load(text)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Verify(opts); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up: lazy initialization outside the measured window

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	run()
	runtime.ReadMemStats(&after)
	allocated := after.TotalAlloc - before.TotalAlloc
	t.Logf("region-1 cold verification allocated %d bytes (ceiling %d)", allocated, uint64(region1AllocCeiling))
	if allocated > region1AllocCeiling {
		t.Errorf("region-1 verification allocated %d bytes, over the %d-byte regression ceiling",
			allocated, uint64(region1AllocCeiling))
	}
}
