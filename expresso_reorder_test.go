package expresso

import (
	"context"
	"fmt"
	"testing"

	"github.com/expresso-verify/expresso/internal/bdd"
	"github.com/expresso-verify/expresso/internal/netgen"
	"github.com/expresso-verify/expresso/internal/testnet"
)

// TestReorderDeterminismMatrix is the acceptance check of dynamic
// variable reordering: with a tiny EXPRESSO_REORDER budget forcing sift
// passes at every EPVP round boundary and before SPF, reports must stay
// byte-identical to a reorder-off sequential baseline across worker
// counts and reclamation schedules. This only holds because sifting runs
// at the same schedule-independent quiescent barriers as reclamation,
// picks its candidates from the canonical node set, and everything
// report-visible (fingerprints, witnesses, counts) is order-independent.
func TestReorderDeterminismMatrix(t *testing.T) {
	fixtures := []struct {
		name string
		cfg  string
		opts Options
	}{
		{"figure4", testnet.Figure4, Options{}},
		{"case1-blackhole", testnet.Case1Blackhole,
			Options{Properties: []Kind{RouteLeakFree, BlackHoleFree, LoopFree}}},
		{"region1-small", netgen.CSP(netgen.CSPOldRegion(1).WithPeers(3)),
			Options{Properties: []Kind{RouteLeakFree, RouteHijackFree, TrafficHijackFree}}},
	}
	for _, f := range fixtures {
		f := f
		t.Run(f.name, func(t *testing.T) {
			net, err := Load(f.cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Baseline: sequential, no reordering, no reclamation.
			t.Setenv("EXPRESSO_REORDER", "off")
			t.Setenv("EXPRESSO_RECLAIM", "off")
			seq := f.opts
			seq.Workers = 1
			repOff, err := net.Verify(seq)
			if err != nil {
				t.Fatal(err)
			}
			want := reportJSON(t, repOff)

			t.Setenv("EXPRESSO_REORDER", "200")
			before := bdd.GlobalReorderStats().Runs
			for _, reclaim := range []string{"off", "200"} {
				t.Setenv("EXPRESSO_RECLAIM", reclaim)
				for _, workers := range []int{1, 4} {
					opts := f.opts
					opts.Workers = workers
					rep, err := net.Verify(opts)
					if err != nil {
						t.Fatal(err)
					}
					if got := reportJSON(t, rep); string(got) != string(want) {
						t.Fatalf("workers=%d reclaim=%s with forced sifting differs from reorder-off baseline:\n--- off ---\n%s\n--- sift ---\n%s",
							workers, reclaim, want, got)
					}
				}
			}
			if after := bdd.GlobalReorderStats().Runs; after == before {
				t.Fatal("forced budget triggered no reorder passes; the matrix asserted nothing")
			}
		})
	}
}

// TestReorderDiskWarmByteIdentical closes the matrix's last axis: a
// process restart that serves every stage from the on-disk artifact
// store (XBDD v2 blobs exported from a reordered manager, re-imported
// and re-canonicalized under a fresh manager's order) must still produce
// the reorder-off baseline's bytes while sifting is forced on.
func TestReorderDiskWarmByteIdentical(t *testing.T) {
	cfg := netgen.CSP(netgen.CSPOldRegion(1).WithPeers(3))
	ctx := context.Background()
	opts := Options{Workers: 1, Properties: []Kind{RouteLeakFree, RouteHijackFree, TrafficHijackFree}}

	t.Setenv("EXPRESSO_REORDER", "off")
	t.Setenv("EXPRESSO_RECLAIM", "off")
	net, err := Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repOff, err := net.Verify(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, repOff)

	t.Setenv("EXPRESSO_REORDER", "200")
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			wopts := opts
			wopts.Workers = workers
			dir := t.TempDir()
			cold := NewVerifier(VerifierConfig{StoreDir: dir})
			repCold, _, err := cold.VerifyText(ctx, cfg, wopts)
			if err != nil {
				t.Fatal(err)
			}
			if got := reportJSON(t, repCold); string(got) != string(want) {
				t.Fatalf("cold store run with forced sifting differs from baseline:\n--- off ---\n%s\n--- cold ---\n%s", want, got)
			}
			warm := NewVerifier(VerifierConfig{StoreDir: dir})
			repWarm, _, err := warm.VerifyText(ctx, cfg, wopts)
			if err != nil {
				t.Fatal(err)
			}
			if got := reportJSON(t, repWarm); string(got) != string(want) {
				t.Fatalf("disk-warm run with forced sifting differs from baseline:\n--- off ---\n%s\n--- warm ---\n%s", want, got)
			}
		})
	}
}
