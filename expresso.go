// Package expresso is the public API of this reproduction of "Expresso:
// Comprehensively Reasoning About External Routes Using Symbolic
// Simulation" (SIGCOMM 2024).
//
// Expresso verifies routing and forwarding properties of a BGP network
// under **arbitrary external routes**: every external neighbor may
// advertise any set of prefixes with any attributes. The analysis runs in
// three stages (§3.2 of the paper):
//
//  1. SRC — symbolic route computation (the EPVP fixed point),
//  2. SPF — symbolic packet forwarding (symbolic FIBs and PECs),
//  3. property analysis over the symbolic RIBs and PECs.
//
// Basic use:
//
//	net, err := expresso.Load(configText)
//	report, err := net.Verify(expresso.Options{})
//	for _, v := range report.Violations { fmt.Println(v) }
package expresso

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/expresso-verify/expresso/internal/config"
	"github.com/expresso-verify/expresso/internal/epvp"
	"github.com/expresso-verify/expresso/internal/properties"
	"github.com/expresso-verify/expresso/internal/route"
	"github.com/expresso-verify/expresso/internal/spf"
	"github.com/expresso-verify/expresso/internal/topology"
)

// Violation re-exports the property-analysis violation type.
type Violation = properties.Violation

// Kind re-exports the property kind.
type Kind = properties.Kind

// Re-exported property kinds.
const (
	RouteLeakFree     = properties.RouteLeakFree
	RouteHijackFree   = properties.RouteHijackFree
	TrafficHijackFree = properties.TrafficHijackFree
	BlackHoleFree     = properties.BlackHoleFree
	LoopFree          = properties.LoopFree
	BlockToExternal   = properties.BlockToExternal
	EgressPreference  = properties.EgressPreference
)

// Mode re-exports the EPVP feature selection (Figure 6c's levels).
type Mode = epvp.Mode

// FullMode enables traffic policies, symbolic communities, and symbolic AS
// paths — the paper's default Expresso configuration.
func FullMode() Mode { return epvp.FullMode() }

// ExpressoMinusMode is Expresso- (§7.2): concrete AS paths.
func ExpressoMinusMode() Mode {
	m := epvp.FullMode()
	m.SymbolicASPaths = false
	return m
}

// Options configures a verification run.
type Options struct {
	// Mode selects modeled protocol features; the zero value is upgraded
	// to FullMode.
	Mode Mode
	// Properties selects which properties to check; empty means
	// RouteLeakFree, RouteHijackFree, and TrafficHijackFree (the §7.1
	// set).
	Properties []Kind
	// BTE is the community for BlockToExternal (required when that
	// property is selected).
	BTE route.Community
	// Workers is the number of goroutines the symbolic engine uses for the
	// EPVP rounds and the SPF traversal. 0 means one per available CPU
	// (runtime.GOMAXPROCS); 1 keeps the single-threaded reference path.
	// The Report is byte-identical for every value, so Workers is excluded
	// from CacheKey. The EXPRESSO_WORKERS environment variable, when set
	// to a positive integer, overrides a zero value (used by CI to force
	// the parallel paths under the race detector).
	Workers int
}

func (o *Options) normalize() {
	if o.Mode.IsZero() {
		o.Mode = FullMode()
	}
	if len(o.Properties) == 0 {
		o.Properties = []Kind{RouteLeakFree, RouteHijackFree, TrafficHijackFree}
	}
	if o.Workers == 0 {
		if env := os.Getenv("EXPRESSO_WORKERS"); env != "" {
			if n, err := strconv.Atoi(env); err == nil && n > 0 {
				o.Workers = n
			}
		}
	}
}

// CacheKey renders the normalized options deterministically (mode flags,
// sorted property set, BTE community). Two Options values with the same key
// request the same verification, so services may key result caches on it
// together with a digest of the configuration text. Workers is deliberately
// absent: worker count changes how fast a report is produced, not its
// content, so cached results are shared across worker settings.
func (o Options) CacheKey() string {
	o.Properties = append([]Kind(nil), o.Properties...)
	o.normalize()
	props := make([]string, len(o.Properties))
	for i, p := range o.Properties {
		props[i] = string(p)
	}
	sort.Strings(props)
	return fmt.Sprintf("mode=%+v|props=%s|bte=%d", o.Mode, strings.Join(props, ","), o.BTE)
}

// ParseProperty maps a property name to its Kind. It accepts both the short
// CLI names (leak, hijack, traffic, blackhole, loop, bte, egress) and the
// canonical kind strings (RouteLeakFree, ...).
func ParseProperty(name string) (Kind, error) {
	switch strings.TrimSpace(name) {
	case "leak", string(RouteLeakFree):
		return RouteLeakFree, nil
	case "hijack", string(RouteHijackFree):
		return RouteHijackFree, nil
	case "traffic", string(TrafficHijackFree):
		return TrafficHijackFree, nil
	case "blackhole", string(BlackHoleFree):
		return BlackHoleFree, nil
	case "loop", string(LoopFree):
		return LoopFree, nil
	case "bte", string(BlockToExternal):
		return BlockToExternal, nil
	case "egress", string(EgressPreference):
		return EgressPreference, nil
	}
	return "", fmt.Errorf("expresso: unknown property %q", name)
}

func (o *Options) wants(k Kind) bool {
	for _, p := range o.Properties {
		if p == k {
			return true
		}
	}
	return false
}

// Timing records per-stage wall-clock durations (Table 3's columns).
// Durations marshal as integer nanoseconds.
type Timing struct {
	SRC                time.Duration `json:"src_ns"`
	RoutingAnalysis    time.Duration `json:"routing_analysis_ns"`
	SPF                time.Duration `json:"spf_ns"`
	ForwardingAnalysis time.Duration `json:"forwarding_analysis_ns"`
	// Workers is the resolved engine worker count the run used (1 =
	// sequential reference path).
	Workers int `json:"workers"`
}

// Total sums the stages.
func (t Timing) Total() time.Duration {
	return t.SRC + t.RoutingAnalysis + t.SPF + t.ForwardingAnalysis
}

// Report is the outcome of a verification run.
type Report struct {
	// Stats summarizes the analyzed network (Table 1's columns).
	Stats topology.Stats `json:"stats"`
	// Violations lists every property violation found.
	Violations []Violation `json:"violations,omitempty"`
	// Timing holds per-stage durations.
	Timing Timing `json:"timing"`
	// HeapBytes is the live heap after the run (Figure 8's metric).
	HeapBytes uint64 `json:"heap_bytes"`
	// Converged reports whether EPVP reached its fixed point.
	Converged bool `json:"converged"`
	// Iterations counts EPVP rounds.
	Iterations int `json:"iterations"`
	// RIBRoutes is the total number of symbolic routes across internal
	// RIBs.
	RIBRoutes int `json:"rib_routes"`
	// PECs is the number of packet equivalence classes computed (0 when no
	// forwarding property was requested).
	PECs int `json:"pecs"`
}

// CountByKind tallies violations per property.
func (r *Report) CountByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, v := range r.Violations {
		out[v.Kind]++
	}
	return out
}

// Network is a loaded, analyzable network.
type Network struct {
	Topo *topology.Network
}

// Load parses a multi-router configuration text and builds the network.
func Load(configText string) (*Network, error) {
	devices, err := config.ParseConfigs(configText)
	if err != nil {
		return nil, err
	}
	topo, err := topology.Build(devices)
	if err != nil {
		return nil, err
	}
	return &Network{Topo: topo}, nil
}

// LoadDir parses every *.cfg file in a directory.
func LoadDir(dir string) (*Network, error) {
	devices, err := config.ParseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("expresso: no router definitions in any *.cfg file under %s", dir)
	}
	topo, err := topology.Build(devices)
	if err != nil {
		return nil, err
	}
	return &Network{Topo: topo}, nil
}

// Verify runs the requested property checks and returns the report.
func (n *Network) Verify(opts Options) (*Report, error) {
	return n.VerifyContext(context.Background(), opts)
}

// VerifyContext is Verify with cancellation: the context is checked inside
// the EPVP fixed-point iteration and the SPF traversal, so a cancelled or
// expired context aborts the run promptly and returns ctx.Err() instead of
// finishing minutes of symbolic simulation nobody is waiting for.
func (n *Network) VerifyContext(ctx context.Context, opts Options) (*Report, error) {
	opts.normalize()
	rep := &Report{Stats: n.Topo.Statistics()}

	// Stage 1: symbolic route computation.
	start := time.Now()
	eng := epvp.New(n.Topo, opts.Mode)
	eng.Workers = opts.Workers
	rep.Timing.Workers = eng.WorkerCount()
	cp, err := eng.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	rep.Timing.SRC = time.Since(start)
	rep.Converged = cp.Converged
	rep.Iterations = cp.Iterations
	for _, rs := range cp.Best {
		rep.RIBRoutes += len(rs)
	}
	// The fixed point is done: drop the ITE memo (often gigabytes on the
	// large snapshots) before the analysis stages; they rebuild what they
	// need.
	eng.Space.M.ClearCaches()
	runtime.GC()

	// Stage 1b: routing-property analysis.
	start = time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.wants(RouteLeakFree) {
		rep.Violations = append(rep.Violations, properties.CheckRouteLeak(eng, cp)...)
	}
	if opts.wants(RouteHijackFree) {
		rep.Violations = append(rep.Violations, properties.CheckRouteHijack(eng, cp)...)
	}
	if opts.wants(BlockToExternal) {
		if opts.BTE == 0 {
			return nil, fmt.Errorf("expresso: BlockToExternal requires Options.BTE")
		}
		rep.Violations = append(rep.Violations, properties.CheckBlockToExternal(eng, cp, opts.BTE)...)
	}
	rep.Timing.RoutingAnalysis = time.Since(start)

	// Stage 2: symbolic packet forwarding (only if a forwarding property
	// was requested).
	needSPF := opts.wants(TrafficHijackFree) || opts.wants(BlackHoleFree) || opts.wants(LoopFree)
	if needSPF {
		start = time.Now()
		dp, err := spf.RunContext(ctx, eng, cp)
		if err != nil {
			return nil, err
		}
		rep.Timing.SPF = time.Since(start)
		rep.PECs = len(dp.PECs)

		start = time.Now()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.wants(TrafficHijackFree) {
			rep.Violations = append(rep.Violations, properties.CheckTrafficHijack(eng, dp)...)
		}
		if opts.wants(BlackHoleFree) {
			rep.Violations = append(rep.Violations,
				properties.CheckBlackHole(eng, dp, properties.InternalDestPredicate(eng, dp))...)
		}
		if opts.wants(LoopFree) {
			rep.Violations = append(rep.Violations, properties.CheckLoop(eng, dp)...)
		}
		rep.Timing.ForwardingAnalysis = time.Since(start)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep.HeapBytes = ms.HeapAlloc
	return rep, nil
}
