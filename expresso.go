// Package expresso is the public API of this reproduction of "Expresso:
// Comprehensively Reasoning About External Routes Using Symbolic
// Simulation" (SIGCOMM 2024).
//
// Expresso verifies routing and forwarding properties of a BGP network
// under **arbitrary external routes**: every external neighbor may
// advertise any set of prefixes with any attributes. The analysis runs in
// three stages (§3.2 of the paper):
//
//  1. SRC — symbolic route computation (the EPVP fixed point),
//  2. SPF — symbolic packet forwarding (symbolic FIBs and PECs),
//  3. property analysis over the symbolic RIBs and PECs.
//
// Basic use:
//
//	net, err := expresso.Load(configText)
//	report, err := net.Verify(expresso.Options{})
//	for _, v := range report.Violations { fmt.Println(v) }
package expresso

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/expresso-verify/expresso/internal/config"
	"github.com/expresso-verify/expresso/internal/epvp"
	"github.com/expresso-verify/expresso/internal/pipeline"
	"github.com/expresso-verify/expresso/internal/properties"
	"github.com/expresso-verify/expresso/internal/route"
	"github.com/expresso-verify/expresso/internal/telemetry"
	"github.com/expresso-verify/expresso/internal/topology"
)

// Violation re-exports the property-analysis violation type.
type Violation = properties.Violation

// Kind re-exports the property kind.
type Kind = properties.Kind

// Re-exported property kinds.
const (
	RouteLeakFree     = properties.RouteLeakFree
	RouteHijackFree   = properties.RouteHijackFree
	TrafficHijackFree = properties.TrafficHijackFree
	BlackHoleFree     = properties.BlackHoleFree
	LoopFree          = properties.LoopFree
	BlockToExternal   = properties.BlockToExternal
	EgressPreference  = properties.EgressPreference
)

// Mode re-exports the EPVP feature selection (Figure 6c's levels).
type Mode = epvp.Mode

// FullMode enables traffic policies, symbolic communities, and symbolic AS
// paths — the paper's default Expresso configuration.
func FullMode() Mode { return epvp.FullMode() }

// ExpressoMinusMode is Expresso- (§7.2): concrete AS paths.
func ExpressoMinusMode() Mode {
	m := epvp.FullMode()
	m.SymbolicASPaths = false
	return m
}

// Options configures a verification run.
type Options struct {
	// Mode selects modeled protocol features; the zero value is upgraded
	// to FullMode.
	Mode Mode
	// Properties selects which properties to check; empty means
	// RouteLeakFree, RouteHijackFree, and TrafficHijackFree (the §7.1
	// set).
	Properties []Kind
	// BTE is the community for BlockToExternal (required when that
	// property is selected).
	BTE route.Community
	// Workers is the number of goroutines the symbolic engine uses for the
	// EPVP rounds and the SPF traversal. 0 means one per available CPU
	// (runtime.GOMAXPROCS); 1 keeps the single-threaded reference path.
	// The Report is byte-identical for every value, so Workers is excluded
	// from CacheKey. The EXPRESSO_WORKERS environment variable, when set
	// to a positive integer, overrides a zero value (used by CI to force
	// the parallel paths under the race detector).
	Workers int
	// GC controls memory reclamation between the SRC fixed point and the
	// analysis stages. The default (GCAuto) drops the engine's ITE memo
	// and forces a collection only under heap pressure, so small
	// snapshots on the service hot path no longer pay a forced GC per
	// request; GCAlways restores the old unconditional behavior and
	// GCNever disables reclamation. Like Workers, GC changes how a report
	// is produced, never its content, so it is excluded from CacheKey.
	GC GCMode
	// Trace, when non-nil, records a run-scoped telemetry trace: one
	// span per pipeline stage (with cache provenance) plus fine-grained
	// engine events — per-EPVP-round convergence records and per-router
	// SPF work. Call Trace.Finish (or WriteJSON) after the run to obtain
	// the trace. A nil Trace is the default and costs nothing on the
	// engine's hot paths. Like Workers and GC, Trace never changes a
	// report's content and is excluded from CacheKey.
	Trace *Tracer
}

// Tracer re-exports the telemetry run-trace recorder (see Options.Trace).
type Tracer = telemetry.Tracer

// Trace re-exports the frozen trace document a Tracer produces.
type Trace = telemetry.Trace

// NewTracer starts a run-scoped trace recorder for Options.Trace.
func NewTracer() *Tracer { return telemetry.NewTracer() }

// GCMode re-exports the pipeline's post-SRC reclamation policy.
type GCMode = pipeline.GCMode

// Reclamation policies for Options.GC.
const (
	GCAuto   = pipeline.GCAuto
	GCAlways = pipeline.GCAlways
	GCNever  = pipeline.GCNever
)

func (o *Options) normalize() {
	if o.Mode.IsZero() {
		o.Mode = FullMode()
	}
	if len(o.Properties) == 0 {
		o.Properties = []Kind{RouteLeakFree, RouteHijackFree, TrafficHijackFree}
	}
	if o.Workers == 0 {
		o.Workers = telemetry.WorkersFromEnv()
	}
}

// CacheKey renders the normalized options deterministically (mode flags,
// sorted property set, BTE community). Two Options values with the same key
// request the same verification, so services may key result caches on it
// together with a digest of the configuration text. Workers and GC are
// deliberately absent: they change how fast a report is produced, not its
// content, so cached results are shared across those settings.
//
// Every field is rendered explicitly — the mode through Mode.Key, the rest
// by hand — never through a %+v of a whole struct, whose output shifts
// with any field rename or reorder and would silently invalidate every
// key. The golden test in expresso_pipeline_test.go pins the format.
func (o Options) CacheKey() string {
	o.Properties = append([]Kind(nil), o.Properties...)
	o.normalize()
	props := make([]string, len(o.Properties))
	for i, p := range o.Properties {
		props[i] = string(p)
	}
	sort.Strings(props)
	return "mode=" + o.Mode.Key() +
		"|props=" + strings.Join(props, ",") +
		"|bte=" + strconv.FormatUint(uint64(o.BTE), 10)
}

// ParseProperty maps a property name to its Kind. It accepts both the short
// CLI names (leak, hijack, traffic, blackhole, loop, bte, egress) and the
// canonical kind strings (RouteLeakFree, ...).
func ParseProperty(name string) (Kind, error) {
	switch strings.TrimSpace(name) {
	case "leak", string(RouteLeakFree):
		return RouteLeakFree, nil
	case "hijack", string(RouteHijackFree):
		return RouteHijackFree, nil
	case "traffic", string(TrafficHijackFree):
		return TrafficHijackFree, nil
	case "blackhole", string(BlackHoleFree):
		return BlackHoleFree, nil
	case "loop", string(LoopFree):
		return LoopFree, nil
	case "bte", string(BlockToExternal):
		return BlockToExternal, nil
	case "egress", string(EgressPreference):
		return EgressPreference, nil
	}
	return "", fmt.Errorf("expresso: unknown property %q", name)
}

func (o *Options) wants(k Kind) bool {
	for _, p := range o.Properties {
		if p == k {
			return true
		}
	}
	return false
}

// Timing records per-stage wall-clock durations (Table 3's columns).
// Durations marshal as integer nanoseconds.
type Timing struct {
	// Load is the parse+build time (0 when verifying a pre-loaded
	// Network, whose load happened outside the run).
	Load               time.Duration `json:"load_ns"`
	SRC                time.Duration `json:"src_ns"`
	RoutingAnalysis    time.Duration `json:"routing_analysis_ns"`
	SPF                time.Duration `json:"spf_ns"`
	ForwardingAnalysis time.Duration `json:"forwarding_analysis_ns"`
	// Workers is the resolved engine worker count the run used (1 =
	// sequential reference path).
	Workers int `json:"workers"`
}

// Total sums every stage duration. A new stage field must be added here:
// the reflection test TestTimingTotalCoversAllStages fails otherwise.
func (t Timing) Total() time.Duration {
	return t.Load + t.SRC + t.RoutingAnalysis + t.SPF + t.ForwardingAnalysis
}

// Report is the outcome of a verification run.
type Report struct {
	// Stats summarizes the analyzed network (Table 1's columns).
	Stats topology.Stats `json:"stats"`
	// Violations lists every property violation found.
	Violations []Violation `json:"violations,omitempty"`
	// Timing holds per-stage durations.
	Timing Timing `json:"timing"`
	// HeapBytes is the live heap after the run (Figure 8's metric).
	HeapBytes uint64 `json:"heap_bytes"`
	// Converged reports whether EPVP reached its fixed point.
	Converged bool `json:"converged"`
	// Iterations counts EPVP rounds.
	Iterations int `json:"iterations"`
	// RIBRoutes is the total number of symbolic routes across internal
	// RIBs.
	RIBRoutes int `json:"rib_routes"`
	// PECs is the number of packet equivalence classes computed (0 when no
	// forwarding property was requested).
	PECs int `json:"pecs"`
}

// CountByKind tallies violations per property.
func (r *Report) CountByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, v := range r.Violations {
		out[v.Kind]++
	}
	return out
}

// Network is a loaded, analyzable network.
type Network struct {
	Topo *topology.Network
}

// Load parses a multi-router configuration text and builds the network.
func Load(configText string) (*Network, error) {
	devices, err := config.ParseConfigs(configText)
	if err != nil {
		return nil, err
	}
	topo, err := topology.Build(devices)
	if err != nil {
		return nil, err
	}
	return &Network{Topo: topo}, nil
}

// LoadDir parses every *.cfg file in a directory.
func LoadDir(dir string) (*Network, error) {
	devices, err := config.ParseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("expresso: no router definitions in any *.cfg file under %s", dir)
	}
	topo, err := topology.Build(devices)
	if err != nil {
		return nil, err
	}
	return &Network{Topo: topo}, nil
}

// Verify runs the requested property checks and returns the report.
func (n *Network) Verify(opts Options) (*Report, error) {
	return n.VerifyContext(context.Background(), opts)
}

// VerifyContext is Verify with cancellation: the context is checked inside
// the EPVP fixed-point iteration, the SPF traversal, and between the
// pipeline stages, so a cancelled or expired context aborts the run
// promptly and returns ctx.Err() instead of finishing minutes of symbolic
// simulation nobody is waiting for.
//
// VerifyContext is a thin wrapper over the staged pipeline
// (internal/pipeline) with no cache attached: every stage runs cold, so
// repeated calls are fully independent — the determinism tests rely on
// that. Use a Verifier for stage-granular caching and incremental
// (warm-start) re-verification.
func (n *Network) VerifyContext(ctx context.Context, opts Options) (*Report, error) {
	opts.normalize()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	runner := &pipeline.Runner{}
	out, err := runner.Run(ctx, opts.request(pipeline.FromNetwork(n.Topo)))
	if err != nil {
		return nil, err
	}
	if opts.Trace != nil {
		// A pre-loaded network has no config text, hence no digest.
		opts.Trace.SetMeta("", opts.Mode.Key(), opts.CacheKey(), out.SRC.Workers)
		traceStages(opts.Trace, out.Stages)
		traceWatermark(opts.Trace, out.SRC)
	}
	return assembleReport(n.Topo.Statistics(), out), nil
}

// traceStages records the pipeline's per-stage provenance entries as
// trace spans (nil-tracer safe).
func traceStages(tr *Tracer, stages []StageInfo) {
	for _, st := range stages {
		tr.Span(st.Stage, st.Status, st.Key, st.Seed, st.Note, st.Duration)
	}
}

// traceWatermark records the run's BDD memory footer: the peak-live-node
// watermark, end-of-run population, complement share, and the ten
// largest levels. The underlying Profile is an O(slab) walk, so it runs
// only here — when a tracer is attached — keeping the zero-overhead
// contract for untraced runs.
func traceWatermark(tr *Tracer, src *pipeline.SRCArtifact) {
	if !tr.Enabled() || src == nil {
		return
	}
	p := src.BDDProfile()
	wm := telemetry.Watermark{
		PeakLiveNodes:   p.PeakLiveNodes,
		PeakLiveBytes:   p.PeakLiveBytes,
		Samples:         p.WatermarkSamples,
		EndLiveNodes:    p.LiveNodes,
		EndLiveBytes:    p.LiveBytes,
		ComplementShare: p.ComplementShare,
	}
	for _, l := range p.TopLevels(10) {
		wm.TopLevels = append(wm.TopLevels, telemetry.BDDLevel{
			Level: l.Level, Nodes: l.Nodes, Bytes: l.Bytes,
		})
	}
	tr.SetWatermark(wm)
}

// validate rejects option combinations the pipeline cannot run. Checked
// before any stage executes (the old monolith noticed a missing BTE only
// after the fixed point had already been computed).
func (o *Options) validate() error {
	if o.wants(BlockToExternal) && o.BTE == 0 {
		return fmt.Errorf("expresso: BlockToExternal requires Options.BTE")
	}
	return nil
}

// request translates normalized options into a pipeline request.
func (o *Options) request(load *pipeline.LoadArtifact) *pipeline.Request {
	return &pipeline.Request{
		Load:       load,
		Mode:       o.Mode,
		Properties: o.Properties,
		BTE:        o.BTE,
		Workers:    o.Workers,
		GC:         o.GC,
		Trace:      o.Trace,
	}
}

// assembleReport builds the public Report from a pipeline outcome. The
// violation order is the monolith's: routing analysis (leak, hijack, bte)
// then forwarding analysis (traffic, blackhole, loop). Converged,
// Iterations, RIBRoutes, and Timing.Workers come from the SRC artifact —
// on a cache hit they describe the run that computed it, which keeps
// reports deterministic regardless of where an artifact came from.
func assembleReport(stats topology.Stats, out *pipeline.Outcome) *Report {
	rep := &Report{Stats: stats}
	src := out.SRC
	rep.Converged = src.Res.Converged
	rep.Iterations = src.Res.Iterations
	for _, rs := range src.Res.Best {
		rep.RIBRoutes += len(rs)
	}
	rep.Timing.Workers = src.Workers
	if out.Routing != nil {
		rep.Violations = append(rep.Violations, out.Routing.Violations...)
	}
	if out.SPF != nil {
		rep.PECs = len(out.SPF.Res.PECs)
	}
	if out.Forwarding != nil {
		rep.Violations = append(rep.Violations, out.Forwarding.Violations...)
	}
	for _, st := range out.Stages {
		switch st.Stage {
		case pipeline.StageLoad:
			rep.Timing.Load = st.Duration
		case pipeline.StageSRC:
			rep.Timing.SRC = st.Duration
		case pipeline.StageRouting:
			rep.Timing.RoutingAnalysis = st.Duration
		case pipeline.StageSPF:
			rep.Timing.SPF = st.Duration
		case pipeline.StageForwarding:
			rep.Timing.ForwardingAnalysis = st.Duration
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep.HeapBytes = ms.HeapAlloc
	return rep
}
