package expresso

import (
	"testing"

	"github.com/expresso-verify/expresso/internal/netgen"
)

func TestProfFullOldLeak(t *testing.T) {
	if raceEnabled {
		// A full-network cold verification is a profiling aid, not a
		// concurrency test; under the race detector it runs ~30 minutes
		// on a single-core box and times out the whole package. The
		// region-scale tests cover the same code paths under race.
		t.Skip("skipping full-network profile run under the race detector")
	}
	net, err := Load(netgen.CSP(netgen.CSPOldFull()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := net.Verify(Options{Properties: []Kind{RouteLeakFree}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SRC=%v RA=%v heap=%dMB violations=%d", rep.Timing.SRC, rep.Timing.RoutingAnalysis, rep.HeapBytes/1e6, len(rep.Violations))
}
