package expresso

import (
	"testing"

	"github.com/expresso-verify/expresso/internal/netgen"
)

func TestProfFullOldLeak(t *testing.T) {
	net, err := Load(netgen.CSP(netgen.CSPOldFull()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := net.Verify(Options{Properties: []Kind{RouteLeakFree}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SRC=%v RA=%v heap=%dMB violations=%d", rep.Timing.SRC, rep.Timing.RoutingAnalysis, rep.HeapBytes/1e6, len(rep.Violations))
}
