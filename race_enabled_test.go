//go:build race

package expresso

// raceEnabled reports whether the race detector is compiled in; tests
// whose runtime balloons 10-20x under it (the full-network profile run)
// skip themselves so `make ci` stays within the per-package timeout.
const raceEnabled = true
