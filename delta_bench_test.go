package expresso_test

// Benchmarks pricing the baseline/delta request model (PR 8):
//
//	BenchmarkVerifyRegion1           — the cold baseline (bench_test.go)
//	BenchmarkDeltaRegion1Baseline    — deltas anchored on a registered baseline
//	BenchmarkDeltaRegion1CoalescedBurst — a burst of superseding deltas
//	                                     through the coalescing queue
//
// `make bench-delta` records all three into BENCH_pr8.json.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"testing"
	"time"

	"github.com/expresso-verify/expresso"
	"github.com/expresso-verify/expresso/internal/netgen"
	"github.com/expresso-verify/expresso/internal/service"
)

// BenchmarkDeltaRegion1Baseline measures the delta path of the
// baseline/delta model: region 1 is registered once as a named baseline,
// then every iteration verifies a one-router patch against it. Unlike
// BenchmarkVerifyRegion1WarmDelta, the warm anchor is the baseline's
// pinned fixed point — deterministic under cache pressure — rather than
// whatever the SRC cache happens to hold. BenchmarkVerifyRegion1 is the
// cold baseline this is measured against.
func BenchmarkDeltaRegion1Baseline(b *testing.B) {
	base := netgen.CSP(netgen.CSPOldRegion(1))
	opts := expresso.Options{Properties: []expresso.Kind{expresso.RouteLeakFree}}
	v := expresso.NewVerifier(expresso.VerifierConfig{ReportCache: -1})
	ctx := context.Background()
	if _, _, err := v.RegisterBaseline(ctx, "region1", base, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		changed := base + fmt.Sprintf("bgp network 203.0.113.%d/32\n", i%256)
		patch := expresso.DiffConfigs(base, changed)
		rep, info, err := v.VerifyDelta(ctx, "region1", patch, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Converged {
			b.Fatal("delta run did not converge")
		}
		for _, st := range info.Stages {
			if st.Stage == "src" && st.Status == expresso.StageMiss {
				b.Fatalf("SRC ran cold on iteration %d (stages %+v)", i, info.Stages)
			}
		}
	}
}

// BenchmarkDeltaRegion1CoalescedBurst measures the coalescing queue
// absorbing a burst: each iteration posts 8 superseding deltas against
// the registered baseline into a single-worker server and waits for the
// winner. The queue collapses the burst to (at most a couple of) engine
// runs, so per-op cost approaches one delta verification rather than
// eight — the gap to 8x BenchmarkDeltaRegion1Baseline is what coalescing
// saves.
func BenchmarkDeltaRegion1CoalescedBurst(b *testing.B) {
	base := netgen.CSP(netgen.CSPOldRegion(1))
	opts := expresso.Options{Workers: 1, Properties: []expresso.Kind{expresso.RouteLeakFree}}
	s := service.New(service.Config{
		Workers: 1, QueueDepth: 64, CacheSize: -1,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if _, _, err := s.Verifier().RegisterBaseline(context.Background(), "region1", base, opts); err != nil {
		b.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Drain(ctx)
	}()
	const burst = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var winner *service.Job
		for j := 0; j < burst; j++ {
			changed := base + fmt.Sprintf("bgp network 203.0.113.%d/32\n", (i*burst+j)%256)
			patch := expresso.DiffConfigs(base, changed)
			job, _, err := s.SubmitDelta("region1", patch, opts, 0)
			if err != nil {
				b.Fatal(err)
			}
			winner = job
		}
		<-winner.Done()
		if st := winner.State(); st != service.JobDone {
			b.Fatalf("winner state = %q, want done", st)
		}
	}
	b.StopTimer()
	if s.Metrics.JobsCoalesced.Load() == 0 {
		b.Fatal("burst produced no coalesced jobs")
	}
}
