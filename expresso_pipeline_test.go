package expresso

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/expresso-verify/expresso/internal/netgen"
	"github.com/expresso-verify/expresso/internal/testnet"
)

// TestOptionsCacheKeyGolden pins the exact cache-key rendering. The old
// rendering pushed Mode through fmt.Sprintf("%+v", ...), so a field
// rename or reorder silently changed every key; every field is now
// rendered explicitly, and this golden string is the regression guard —
// if it changes, every cached digest in a running service is invalidated,
// so change it deliberately.
func TestOptionsCacheKeyGolden(t *testing.T) {
	got := Options{}.CacheKey()
	want := "mode=t:true,c:true,a:true" +
		"|props=RouteHijackFree,RouteLeakFree,TrafficHijackFree" +
		"|bte=0"
	if got != want {
		t.Errorf("Options{}.CacheKey() =\n %q, want\n %q", got, want)
	}
	withBTE := Options{Properties: []Kind{BlockToExternal}, BTE: 0xB0A0_0001}
	if k := withBTE.CacheKey(); !strings.Contains(k, "|bte=2963275777") {
		t.Errorf("BTE rendering missing from %q", k)
	}
}

// TestGCExcludedFromCacheKey: like Workers, the reclamation policy changes
// how a report is produced, never its content.
func TestGCExcludedFromCacheKey(t *testing.T) {
	a := Options{GC: GCAlways}
	b := Options{GC: GCNever}
	if a.CacheKey() != b.CacheKey() {
		t.Error("CacheKey must not depend on Options.GC")
	}
}

// TestTimingTotalCoversAllStages sweeps Timing's fields by reflection:
// every duration field must contribute to Total, so a stage added without
// extending Total fails here instead of silently vanishing from the sum.
func TestTimingTotalCoversAllStages(t *testing.T) {
	typ := reflect.TypeOf(Timing{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type != reflect.TypeOf(time.Duration(0)) {
			continue // Workers and any future non-duration metadata
		}
		v := reflect.New(typ).Elem()
		v.Field(i).SetInt(int64(7 * time.Millisecond))
		if got := v.Interface().(Timing).Total(); got != 7*time.Millisecond {
			t.Errorf("Timing.Total ignores stage field %s (got %v)", f.Name, got)
		}
	}
	sum := Timing{Load: 1, SRC: 10, RoutingAnalysis: 100, SPF: 1000, ForwardingAnalysis: 10000}
	if got := sum.Total(); got != 11111 {
		t.Errorf("Total = %d, want 11111", got)
	}
}

// TestParsePropertyRoundTrip covers every short name and canonical kind
// string, plus the error path.
func TestParsePropertyRoundTrip(t *testing.T) {
	short := map[string]Kind{
		"leak":      RouteLeakFree,
		"hijack":    RouteHijackFree,
		"traffic":   TrafficHijackFree,
		"blackhole": BlackHoleFree,
		"loop":      LoopFree,
		"bte":       BlockToExternal,
		"egress":    EgressPreference,
	}
	for name, want := range short {
		if got, err := ParseProperty(name); err != nil || got != want {
			t.Errorf("ParseProperty(%q) = %v, %v; want %v", name, got, err, want)
		}
		// The canonical kind string round-trips to itself.
		if got, err := ParseProperty(string(want)); err != nil || got != want {
			t.Errorf("ParseProperty(%q) = %v, %v; want %v", string(want), got, err, want)
		}
		// Surrounding whitespace is trimmed.
		if got, err := ParseProperty("  " + name + "\t"); err != nil || got != want {
			t.Errorf("ParseProperty with whitespace around %q = %v, %v", name, got, err)
		}
	}
	for _, bad := range []string{"", "   ", "Leak", "route-leak", "unknown"} {
		k, err := ParseProperty(bad)
		if err == nil {
			t.Errorf("ParseProperty(%q) = %v, want error", bad, k)
			continue
		}
		if !strings.Contains(err.Error(), "unknown property") {
			t.Errorf("ParseProperty(%q) error = %q, want it to name the unknown property", bad, err)
		}
	}
}

// normalizedJSON marshals a report with the run-dependent fields zeroed:
// wall-clock timings, worker count, live heap, and the EPVP round count
// (a warm start reaches the same fixed point in fewer rounds). Everything
// else — violations, witnesses, RIB and PEC counts, convergence — must be
// byte-identical between a warm-started and a cold run.
func normalizedJSON(t *testing.T, rep *Report) string {
	t.Helper()
	r := *rep
	r.Timing = Timing{}
	r.HeapBytes = 0
	r.Iterations = 0
	out, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func stageStatus(info *RunInfo, stage string) string {
	for _, st := range info.Stages {
		if st.Stage == stage {
			return st.Status
		}
	}
	return ""
}

// regionDelta returns the small region-1 fixture and a one-router delta
// of it (the last router originates one extra prefix).
func regionDelta() (base, delta string) {
	base = netgen.CSP(netgen.CSPOldRegion(1).WithPeers(3))
	return base, base + "bgp network 203.0.113.0/24\n"
}

// TestVerifierWarmStartByteIdentical is the acceptance check of the
// incremental path: for a one-router config delta on the testnet and
// region fixtures, a warm-started re-verification produces a report
// byte-identical (normalized for run-dependent fields) to a cold run of
// the new configuration.
func TestVerifierWarmStartByteIdentical(t *testing.T) {
	regionBase, regionChanged := regionDelta()
	cases := []struct {
		name       string
		base, next string
		opts       Options
	}{
		{"figure4-to-fixed", testnet.Figure4, testnet.Figure4Fixed, Options{Workers: 1}},
		{"region1-add-network", regionBase, regionChanged,
			Options{Workers: 1, Properties: []Kind{RouteLeakFree, RouteHijackFree, TrafficHijackFree}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			v := NewVerifier(VerifierConfig{})
			if _, _, err := v.VerifyText(ctx, tc.base, tc.opts); err != nil {
				t.Fatal(err)
			}
			warmRep, warmInfo, err := v.VerifyText(ctx, tc.next, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if s := stageStatus(warmInfo, "src"); s != StageWarm {
				t.Fatalf("delta SRC status = %q, want %q (stages: %+v)", s, StageWarm, warmInfo.Stages)
			}
			if !warmRep.Converged {
				t.Fatal("warm-started run did not converge")
			}
			coldNet, err := Load(tc.next)
			if err != nil {
				t.Fatal(err)
			}
			coldRep, err := coldNet.Verify(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := normalizedJSON(t, warmRep), normalizedJSON(t, coldRep); got != want {
				t.Errorf("warm report differs from cold run:\n--- cold ---\n%s\n--- warm ---\n%s", want, got)
			}
		})
	}
}

// TestVerifierWarmStartWithReclaimSweeps is the warm-chain safety check
// of dead-node reclamation: with a tiny EXPRESSO_RECLAIM budget, the warm
// run sweeps the shared manager between rounds while the prior artifact's
// fixed point, the compiled transfers, and the edge memo are live only
// through the pinning API. The warm report must stay byte-identical to a
// cold run of the new configuration at both worker counts.
func TestVerifierWarmStartWithReclaimSweeps(t *testing.T) {
	t.Setenv("EXPRESSO_RECLAIM", "200")
	regionBase, regionChanged := regionDelta()
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			opts := Options{Workers: workers,
				Properties: []Kind{RouteLeakFree, RouteHijackFree, TrafficHijackFree}}
			ctx := context.Background()
			v := NewVerifier(VerifierConfig{})
			if _, _, err := v.VerifyText(ctx, regionBase, opts); err != nil {
				t.Fatal(err)
			}
			warmRep, warmInfo, err := v.VerifyText(ctx, regionChanged, opts)
			if err != nil {
				t.Fatal(err)
			}
			if s := stageStatus(warmInfo, "src"); s != StageWarm {
				t.Fatalf("delta SRC status = %q, want %q (stages: %+v)", s, StageWarm, warmInfo.Stages)
			}
			coldNet, err := Load(regionChanged)
			if err != nil {
				t.Fatal(err)
			}
			coldRep, err := coldNet.Verify(opts)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := normalizedJSON(t, warmRep), normalizedJSON(t, coldRep); got != want {
				t.Errorf("warm report under forced sweeps differs from cold run:\n--- cold ---\n%s\n--- warm ---\n%s", want, got)
			}
		})
	}
}

// TestVerifierStageReuse pins the observable reuse matrix: identical
// resubmission hits the report cache; a property-set change reuses the
// converged SRC artifact; adding a forwarding property on a checked
// snapshot reuses SRC and SPF.
func TestVerifierStageReuse(t *testing.T) {
	ctx := context.Background()
	v := NewVerifier(VerifierConfig{})
	cfg := testnet.Figure4
	opts := func(props ...Kind) Options { return Options{Workers: 1, Properties: props} }

	_, i1, err := v.VerifyText(ctx, cfg, opts(RouteLeakFree))
	if err != nil {
		t.Fatal(err)
	}
	if i1.CacheHit || stageStatus(i1, "src") != StageMiss {
		t.Fatalf("first run should miss everywhere: %+v", i1.Stages)
	}

	// Identical resubmission (with formatting noise): whole-report hit.
	_, i2, err := v.VerifyText(ctx, cfg+"\n// trailing comment\n", opts(RouteLeakFree))
	if err != nil {
		t.Fatal(err)
	}
	if !i2.CacheHit {
		t.Errorf("identical resubmission missed the report cache: %+v", i2.Stages)
	}

	// Property-set change: SRC (and load) reused, analysis re-run.
	_, i3, err := v.VerifyText(ctx, cfg, opts(RouteLeakFree, RouteHijackFree))
	if err != nil {
		t.Fatal(err)
	}
	if s := stageStatus(i3, "src"); s != StageHit {
		t.Errorf("property-set change SRC status = %q, want hit (%+v)", s, i3.Stages)
	}
	if s := stageStatus(i3, "load"); s != StageHit {
		t.Errorf("property-set change load status = %q, want hit", s)
	}

	// First forwarding property: SPF computed.
	_, i4, err := v.VerifyText(ctx, cfg, opts(RouteLeakFree, BlackHoleFree))
	if err != nil {
		t.Fatal(err)
	}
	if s := stageStatus(i4, "spf"); s != StageMiss {
		t.Errorf("first forwarding run SPF status = %q, want miss", s)
	}
	// Second forwarding property: SRC, SPF, and the repeated routing
	// subset all reused; only the forwarding analysis runs.
	_, i5, err := v.VerifyText(ctx, cfg, opts(RouteLeakFree, LoopFree))
	if err != nil {
		t.Fatal(err)
	}
	if s := stageStatus(i5, "spf"); s != StageHit {
		t.Errorf("second forwarding run SPF status = %q, want hit (%+v)", s, i5.Stages)
	}
	if s := stageStatus(i5, "routing_analysis"); s != StageHit {
		t.Errorf("repeated routing subset status = %q, want hit", s)
	}

	stats := v.CacheStats()
	byStage := map[string]StageCacheStat{}
	for _, st := range stats {
		byStage[st.Stage] = st
	}
	if byStage["src"].Hits < 3 || byStage["src"].Entries != 1 {
		t.Errorf("src cache stats = %+v, want >=3 hits over 1 entry", byStage["src"])
	}
	if byStage["report"].Hits != 1 {
		t.Errorf("report cache hits = %d, want 1", byStage["report"].Hits)
	}
}

// TestVerifyTextMatchesVerify: the cached text path and the plain Network
// path must agree on report content.
func TestVerifyTextMatchesVerify(t *testing.T) {
	ctx := context.Background()
	opts := Options{Workers: 1}
	v := NewVerifier(VerifierConfig{})
	viaText, _, err := v.VerifyText(ctx, testnet.Case2RouteLeak, opts)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Load(testnet.Case2RouteLeak)
	if err != nil {
		t.Fatal(err)
	}
	viaNetwork, err := net.Verify(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalizedJSON(t, viaText), normalizedJSON(t, viaNetwork); got != want {
		t.Errorf("VerifyText and Verify disagree:\n--- Verify ---\n%s\n--- VerifyText ---\n%s", want, got)
	}
}

// TestVerifierConcurrentSharedArtifacts hammers one Verifier from several
// goroutines with overlapping property sets, so cached SRC/SPF artifacts
// are used concurrently; the per-artifact run lock must serialize the
// engine. Run under -race this is the regression test for shared-manager
// concurrency.
func TestVerifierConcurrentSharedArtifacts(t *testing.T) {
	ctx := context.Background()
	v := NewVerifier(VerifierConfig{})
	propSets := [][]Kind{
		{RouteLeakFree},
		{RouteLeakFree, RouteHijackFree},
		{BlackHoleFree},
		{RouteLeakFree, LoopFree},
	}
	errc := make(chan error, 2*len(propSets))
	for i := 0; i < 2; i++ {
		for _, props := range propSets {
			props := props
			go func() {
				_, _, err := v.VerifyText(ctx, testnet.Figure4, Options{Workers: 2, Properties: props})
				errc <- err
			}()
		}
	}
	for i := 0; i < 2*len(propSets); i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
